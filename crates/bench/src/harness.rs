use std::fmt::Write as _;

/// A simple markdown table builder for experiment output.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a footnote line printed under the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as github-flavored markdown.
    pub fn to_markdown(&self) -> String {
        // Column widths count characters, not bytes: formatter padding
        // (`{:>w$}`) is character-based, so byte lengths would misalign any
        // column containing multi-byte UTF-8 (σ, ≈, … in stats output).
        let chars = |s: &String| s.chars().count();
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows.iter().map(|r| chars(&r[i])).chain([chars(h)]).max().unwrap_or(3)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(line, " {c:>w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r));
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out
    }

    /// Prints the markdown rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }
}

/// Runs `trials` seeded executions of `f` across threads (one logical trial
/// per seed `0..trials`), preserving seed order in the output.
///
/// The result vector is split into disjoint per-thread chunks up front, so
/// every worker writes straight into its own shard — the hot trial loop
/// takes no lock and shares no cache line (no mutex, no atomics). Chunks are
/// contiguous, so output order is seed order by construction.
pub fn parallel_trials<T: Send>(trials: u64, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(16);
    let trials_usize = usize::try_from(trials).expect("trial count fits in memory");
    let mut results: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let chunk_len = trials_usize.div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (chunk_idx, shard) in results.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = (chunk_idx * chunk_len) as u64;
                for (offset, slot) in shard.iter_mut().enumerate() {
                    *slot = Some(f(base + offset as u64));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("all trials filled")).collect()
}

/// Mean of an f64 slice (0 for empty).
pub(crate) fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.note("a note");
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a |"));
        assert!(md.contains("> a note"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn multibyte_cells_align_by_character_count() {
        // Regression: widths were computed from byte lengths, so "σ≈3.5"
        // (5 chars, 9 bytes) forced 4 extra pad spaces into every other row
        // of its column.
        let mut t = Table::new("stats", &["name", "value"]);
        t.row(&["sigma".into(), "σ≈3.5".into()]);
        t.row(&["plain".into(), "12345".into()]);
        let md = t.to_markdown();
        let rows: Vec<&str> =
            md.lines().filter(|l| l.contains("sigma") || l.contains("plain")).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].chars().count(),
            rows[1].chars().count(),
            "rows align by display width:\n{md}"
        );
        assert!(rows[0].contains("| σ≈3.5 |"), "no spurious padding: {md}");
    }

    #[test]
    fn multibyte_headers_align_by_character_count() {
        // The percentile columns put multi-byte glyphs in *headers* too
        // (e.g. "p95 ≈" / "σ rounds"): header widths must also count
        // characters, or every data row in those columns inherits the
        // byte-length excess as spurious padding.
        let mut t = Table::new("tails", &["rounds σ", "p95 ≈", "plain"]);
        t.row(&["1.5".into(), "950.0".into(), "12345".into()]);
        t.row(&["12.25".into(), "7.0".into(), "9".into()]);
        let md = t.to_markdown();
        let table_lines: Vec<&str> = md.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(table_lines.len(), 4, "header + separator + two rows:\n{md}");
        let width = table_lines[0].chars().count();
        for line in &table_lines {
            assert_eq!(line.chars().count(), width, "lines align by display width:\n{md}");
        }
        // The widest cell ("12345") sets the plain column; the σ header
        // (8 chars, 9 bytes) sets its own column at 8, not 9.
        assert!(table_lines[0].contains("| rounds σ |"), "no spurious header padding: {md}");
        assert!(table_lines[2].contains("|      1.5 |"), "data pads to 8 chars under σ: {md}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn parallel_trials_preserves_seed_order() {
        let out = parallel_trials(64, |seed| seed * 2);
        assert_eq!(out, (0..64).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_trials_handles_uneven_and_tiny_counts() {
        for trials in [0u64, 1, 2, 13, 17, 31] {
            let out = parallel_trials(trials, |seed| seed + 100);
            assert_eq!(out, (0..trials).map(|s| s + 100).collect::<Vec<_>>(), "trials={trials}");
        }
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
