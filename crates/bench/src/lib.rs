//! Benchmark harness: the experiment suite that regenerates every
//! quantitative claim of the paper (`EXPERIMENTS.md`), plus shared table /
//! trial utilities used by the criterion benches.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p rn-bench --bin experiments -- all
//! ```
//!
//! or a single experiment with its id (`e1` … `e12`). Every experiment is a
//! pure function of a master seed; tables record the seed they were
//! produced from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod harness;

pub use harness::{parallel_trials, Table};
