//! Benchmark harness: the declarative scenario subsystem (registry +
//! campaign runner), the paper-reproduction experiment suite
//! (`EXPERIMENTS.md`), and shared table / trial utilities used by the
//! criterion benches.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p rn_bench --bin experiments -- all
//! ```
//!
//! a single preset with its id (`e1` … `e12`, `smoke`, `sweep_*`), or any
//! ad-hoc protocol/topology pair with
//!
//! ```text
//! cargo run --release -p rn_bench --bin experiments -- \
//!     --scenario "leader_election@torus(32x32)" --trials 20 --json out.json
//! ```
//!
//! Every run is a pure function of a master seed; campaign JSON results are
//! byte-identical for a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod diff;
pub mod executor;
pub mod experiments;
mod harness;
pub mod json;
pub mod listing;
pub mod presets;
pub mod registry;
pub mod sink;
pub mod stats;
pub mod workload;

pub use campaign::{
    validate_results, Campaign, CampaignResult, CellResult, CellSpec, CellStats, TrialPlan,
    RESULTS_SCHEMA,
};
pub use diff::{
    diff_results, diff_results_gated, diff_results_with, DiffOptions, DiffReport, DiffStatus,
};
pub use executor::{execute_with, resolve_threads, ExecOptions};
pub use harness::{parallel_trials, Table};
pub use json::{Json, JsonError};
pub use listing::registry_listing;
pub use registry::{
    families, find_family, model_name, parse_model, Overrides, ProtocolSpec, RegistryError,
    ScenarioSpec,
};
pub use rn_core::SourcePlacement;
pub use rn_sim::{OverrideClass, OverrideSpec, ProtocolFamily};
pub use sink::{CampaignSink, JsonStreamSink, MemorySink, RunHeader};
pub use stats::{exact_quantile_sorted, P2Sketch, QuantityAccum, TrialAccumulator};
pub use workload::BenchWorkload;
