//! Shared setup for the criterion suites: resolve a registry
//! [`ScenarioSpec`] string into everything a bench loop needs.
//!
//! Every suite measures workloads expressed as scenario strings — the same
//! grammar campaigns and the `experiments` CLI use — so bench and
//! experiment workloads cannot drift apart: changing what is benchmarked is
//! a string edit, not code.

use crate::registry::ScenarioSpec;
use crate::stats::{CellStats, QuantityAccum};
use rn_graph::Graph;
use rn_sim::{CollisionModel, NetParams, Runnable, TrialRecord};

/// A resolved bench workload: the built topology, the instantiated
/// [`Runnable`] and the effective collision model.
pub struct BenchWorkload {
    /// The parsed scenario (faults included, if the string carries a
    /// suffix).
    pub spec: ScenarioSpec,
    /// Canonical protocol name (criterion benchmark id).
    pub name: String,
    /// The topology, built once and pinned for every iteration.
    pub graph: Graph,
    /// Network knowledge handed to trials.
    pub net: NetParams,
    /// The protocol under measurement.
    pub runnable: Box<dyn Runnable>,
    /// The *effective* model trials run under (the runnable may remap the
    /// requested one, e.g. beep probes pin CD).
    pub model: CollisionModel,
}

impl BenchWorkload {
    /// Resolves `spec_str` with the topology built from `topology_seed`.
    /// The requested model is `nocd`; the workload records whatever the
    /// runnable maps it to.
    ///
    /// # Panics
    ///
    /// Panics on an invalid scenario string — bench workloads are
    /// compile-time constants, so failing loudly is the right behavior.
    pub fn resolve(spec_str: &str, topology_seed: u64) -> BenchWorkload {
        let spec: ScenarioSpec =
            spec_str.parse().unwrap_or_else(|e| panic!("bench scenario {spec_str:?}: {e}"));
        let graph = spec.topology.build(topology_seed);
        let net = NetParams::new(graph.n(), graph.diameter_double_sweep());
        let runnable = spec.protocol.instantiate();
        let model = runnable.effective_model(CollisionModel::NoCollisionDetection);
        BenchWorkload { name: runnable.name(), spec, graph, net, runnable, model }
    }

    /// Runs one trial under the workload's fault plan (most workloads have
    /// none) — the body of a criterion iteration.
    pub fn run_trial(&self, seed: u64) -> TrialRecord {
        self.runnable.run_trial_under_faults(
            &self.graph,
            self.net,
            self.model,
            seed,
            &self.spec.faults,
        )
    }

    /// Runs trials under seeds `0..trials` and folds their round counts
    /// into one [`CellStats`] — mean, spread *and* the streaming
    /// p50/p95/p99 tail. A one-call distribution probe for suites and tests
    /// that want to report or assert on a workload's round tail without
    /// standing up a full campaign.
    pub fn rounds_distribution(&self, trials: u64) -> CellStats {
        let mut acc = QuantityAccum::new();
        for seed in 0..trials {
            acc.push(self.run_trial(seed).rounds);
        }
        acc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_resolve_and_run() {
        let w = BenchWorkload::resolve("bgi@grid(6x6)", 0xB0);
        assert_eq!(w.name, "bgi");
        assert_eq!(w.graph.n(), 36);
        let r = w.run_trial(1);
        assert!(r.completed && r.rounds > 0);
        // A CD-pinning workload reports the model it truly runs under.
        let w = BenchWorkload::resolve("broadcast_cd@grid(6x6)", 0xB0);
        assert_eq!(w.model, CollisionModel::CollisionDetection);
    }

    #[test]
    fn rounds_distribution_summarizes_the_workload_tail() {
        let w = BenchWorkload::resolve("bgi@grid(6x6)", 0xB0);
        let d = w.rounds_distribution(12);
        assert!(d.mean > 0.0);
        assert!((d.min as f64) <= d.p50 && d.p50 <= d.p95 && d.p95 <= d.max as f64);
        // Seeds are fixed, so the probe is reproducible.
        assert_eq!(d, w.rounds_distribution(12));
    }

    #[test]
    #[should_panic(expected = "bench scenario")]
    fn invalid_bench_scenarios_fail_loudly() {
        BenchWorkload::resolve("nosuch@grid(6x6)", 0);
    }
}
