//! The human-readable registry listing behind `experiments --list`.
//!
//! Rendered by one function so the CLI and the golden-file test
//! (`tests/golden_list.rs`) cannot drift apart: any change to the topology
//! grammar, a family's grammar/about line, an override schema or the preset
//! table shows up as a golden diff in review.

use crate::presets;
use crate::registry::{families, ProtocolSpec};
use rn_graph::TopologySpec;
use rn_sim::{FaultPlan, OverrideSpec};
use std::fmt::Write as _;

/// Renders the full registry: topology grammar, protocol families (with
/// per-family grammar and override schemas), canonical instances, collision
/// models, fault grammar and presets.
pub fn registry_listing() -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "topology specs:").unwrap();
    for form in TopologySpec::GRAMMAR {
        writeln!(w, "  {form}").unwrap();
    }

    writeln!(w, "\nprotocol families:").unwrap();
    for f in families() {
        let marker = if f.overrides().is_empty() { "" } else { "  {overrides}" };
        writeln!(w, "  {:<38} {}{marker}", f.grammar(), f.about()).unwrap();
    }

    writeln!(w, "\ncanonical protocol instances:").unwrap();
    for spec in ProtocolSpec::all() {
        writeln!(w, "  {spec}").unwrap();
    }

    // Override schemas, grouped by identity so shared schemas (the Compete
    // family's) print once with the list of families accepting them.
    let mut schemas: Vec<(&'static [OverrideSpec], Vec<&'static str>)> = Vec::new();
    for f in families() {
        let schema = f.overrides();
        if schema.is_empty() {
            continue;
        }
        match schemas.iter_mut().find(|(s, _)| std::ptr::eq(*s, schema)) {
            Some((_, names)) => names.push(f.name()),
            None => schemas.push((schema, vec![f.name()])),
        }
    }
    for (schema, names) in &schemas {
        writeln!(w, "\noverride keys ({{key=value}}, accepted by: {}):", names.join(", ")).unwrap();
        for k in *schema {
            writeln!(w, "  {:<12} {}", k.key, k.about).unwrap();
        }
    }

    writeln!(w, "\ncollision models:\n  nocd\n  cd").unwrap();
    writeln!(w, "\nfault suffixes (append to the topology, also accepted by --faults):").unwrap();
    for form in FaultPlan::GRAMMAR {
        writeln!(w, "  !{form}").unwrap();
    }

    writeln!(w, "\npresets:").unwrap();
    for p in presets::presets() {
        writeln!(w, "  {:<18} [{:>8}]  {}", p.id, p.kind_name(), p.about).unwrap();
    }

    writeln!(
        w,
        "\nscenario syntax: PROTOCOL[{{OVERRIDES}}]@TOPOLOGY[!FAULTS], e.g.\n  \
         \"leader_election@torus(32x32)\"\n  \
         \"broadcast{{curtail=1e6}}@rgg(500,0.08)!jam(5,0.5)\"\n  \
         \"compete_cd(4)@rgg(500,0.08)!crash(0.01)\"\n  \
         \"partition(0.5)@grid(32x32)\""
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_names_every_family_and_preset() {
        let listing = registry_listing();
        for f in families() {
            assert!(listing.contains(f.grammar()), "listing misses family {}", f.name());
        }
        for spec in ProtocolSpec::all() {
            assert!(listing.contains(&spec.to_string()), "listing misses instance {spec}");
        }
        for p in presets::presets() {
            assert!(listing.contains(p.id), "listing misses preset {}", p.id);
        }
        assert!(listing.contains("!crash(P)"), "fault grammar lists crash");
    }
}
