//! E6 micro-bench: the schedule executors (the Lemma 2.3 substrate), now a
//! registry family — each iteration computes a fresh Partition(β), builds
//! the tree schedule and runs one full-radius pass.
//!
//! Workloads are `ScenarioSpec` strings resolved through the scenario
//! registry (see `benches/broadcast.rs`); the executor and β are part of
//! the string.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_bench::BenchWorkload;

/// The registry workloads this suite measures (one benchmark each).
const SCENARIOS: &[&str] = &["schedule(downcast)@grid(32x32)", "schedule(upcast)@torus(24x24)"];

/// Graph-build seed: benches pin one topology instance across all runs.
const TOPOLOGY_SEED: u64 = 0x5C;

fn bench_schedule_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_passes");
    group.sample_size(10);
    for spec_str in SCENARIOS {
        let w = BenchWorkload::resolve(spec_str, TOPOLOGY_SEED);
        group.bench_function(w.name.clone(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = w.run_trial(seed);
                r.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_passes);
criterion_main!(benches);
