//! E6 micro-bench: schedule construction and downcast execution
//! (the Lemma 2.3 substrate).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rn_cluster::Partition;
use rn_graph::generators;
use rn_schedule::{Downcast, SlotPolicy, TreeSchedule};
use rn_sim::{CollisionModel, Simulator};

fn bench_schedule_build(c: &mut Criterion) {
    let g = generators::grid(32, 32);
    let mut rng = SmallRng::seed_from_u64(3);
    let part = Partition::compute(&g, 0.25, &mut rng);
    c.bench_function("schedule_build_grid32", |b| {
        b.iter(|| TreeSchedule::build(&g, &part, SlotPolicy::Auto).window())
    });
}

fn bench_downcast_pass(c: &mut Criterion) {
    let g = generators::grid(32, 32);
    let mut rng = SmallRng::seed_from_u64(4);
    let part = Partition::compute(&g, 1e-9, &mut rng); // single cluster
    let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
    let mut group = c.benchmark_group("downcast_pass");
    group.sample_size(20);
    group.bench_function("grid32_full_radius", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut dc = Downcast::from_center_values(&sched, sched.max_depth(), &[Some(1)]);
            let budget = dc.pass_len();
            let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
            sim.run(&mut dc, budget);
            dc.value_of(0)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_schedule_build, bench_downcast_pass);
criterion_main!(benches);
