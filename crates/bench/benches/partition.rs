//! E2/E3 micro-bench: Partition(β) oracle construction and property
//! measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rn_cluster::{stats::PartitionStats, Partition};
use rn_graph::generators;

fn bench_partition_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_compute");
    group.sample_size(20);
    let g = generators::grid(32, 32);
    for j in [1i32, 4] {
        let beta = (2.0f64).powi(-j);
        group.bench_with_input(BenchmarkId::new("grid32_beta", format!("2^-{j}")), &j, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SmallRng::seed_from_u64(seed);
                Partition::compute(&g, beta, &mut rng).num_clusters()
            });
        });
    }
    group.finish();
}

fn bench_partition_stats(c: &mut Criterion) {
    let g = generators::grid(32, 32);
    let mut rng = SmallRng::seed_from_u64(7);
    let p = Partition::compute(&g, 0.25, &mut rng);
    c.bench_function("partition_stats_grid32", |b| {
        b.iter(|| PartitionStats::measure(&g, &p).cut_edges)
    });
}

criterion_group!(benches, bench_partition_compute, bench_partition_stats);
criterion_main!(benches);
