//! E2/E3 micro-bench: the Partition(β) sub-protocol, now a registry family
//! — each iteration runs the distributed construction end to end and
//! reports its radio-round cost.
//!
//! Workloads are `ScenarioSpec` strings resolved through the scenario
//! registry (see `benches/broadcast.rs`); β is part of the string, so
//! sweeping it is a string edit.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_bench::BenchWorkload;

/// The registry workloads this suite measures (one benchmark each):
/// the acceptance β plus a finer clustering on the same grid.
const SCENARIOS: &[&str] = &["partition(0.5)@grid(32x32)", "partition(0.0625)@grid(32x32)"];

/// Graph-build seed: benches pin one topology instance across all runs.
const TOPOLOGY_SEED: u64 = 0x9A;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_grid32");
    group.sample_size(10);
    for spec_str in SCENARIOS {
        let w = BenchWorkload::resolve(spec_str, TOPOLOGY_SEED);
        group.bench_function(w.name.clone(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = w.run_trial(seed);
                r.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
