//! E1 micro-bench: the Decay primitive (Lemma 3.1) and BGI broadcast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_decay::{DecayBroadcast, SingleDecayRound};
use rn_graph::generators;
use rn_sim::{CollisionModel, NetParams, Simulator};

fn bench_single_decay_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("decay_round");
    group.sample_size(20);
    for k in [16usize, 256] {
        let g = generators::star(k + 1);
        let participants: Vec<u32> = (1..=k as u32).collect();
        group.bench_with_input(BenchmarkId::new("star", k), &k, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut p = SingleDecayRound::new(k + 1, 10, participants.clone(), seed);
                let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
                sim.run(&mut p, 10);
                p.has_received(0)
            });
        });
    }
    group.finish();
}

fn bench_bgi_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgi_broadcast");
    group.sample_size(10);
    for m in [16usize, 24] {
        let g = generators::grid(m, m);
        let net = NetParams::new(g.n(), (2 * (m - 1)) as u32);
        group.bench_with_input(BenchmarkId::new("grid", m), &m, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut p = DecayBroadcast::single_source(net, 0, 1, seed);
                let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
                let stats = sim.run_until(&mut p, 1_000_000, |_, p| p.all_informed());
                assert!(p.all_informed());
                stats.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_decay_round, bench_bgi_broadcast);
criterion_main!(benches);
