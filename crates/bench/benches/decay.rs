//! E1 micro-bench: the decay family — raw multi-source decay, its
//! truncated variant, and BGI broadcast built on it.
//!
//! Workloads are `ScenarioSpec` strings resolved through the scenario
//! registry (see `benches/broadcast.rs`) — the PR 4 partial port finished.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_bench::BenchWorkload;

/// The registry workloads this suite measures (one benchmark each).
const SCENARIOS: &[&str] =
    &["decay(4)@grid(16x16)", "decay_trunc(4)@grid(16x16)", "bgi@grid(24x24)"];

/// Graph-build seed: benches pin one topology instance across all runs.
const TOPOLOGY_SEED: u64 = 0xD0;

fn bench_decay_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("decay_family");
    group.sample_size(10);
    for spec_str in SCENARIOS {
        let w = BenchWorkload::resolve(spec_str, TOPOLOGY_SEED);
        group.bench_function(w.name.clone(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = w.run_trial(seed);
                assert!(r.completed, "{spec_str} must complete");
                r.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decay_family);
criterion_main!(benches);
