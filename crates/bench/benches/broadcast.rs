//! E7/E8 micro-bench: end-to-end broadcast, ours vs the baselines.
//!
//! Workloads are `ScenarioSpec` strings resolved through the scenario
//! registry (via [`BenchWorkload`]) — the same grammar campaigns and the
//! `experiments` CLI use — so bench and experiment workloads cannot drift
//! apart. Changing what is benchmarked is a string edit, not code.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_bench::BenchWorkload;

/// The registry workloads this suite measures (one benchmark each).
const SCENARIOS: &[&str] = &["bgi@grid(24x24)", "truncated@grid(24x24)", "broadcast@grid(24x24)"];

/// Graph-build seed: benches pin one topology instance across all runs.
const TOPOLOGY_SEED: u64 = 0xB0;

fn bench_broadcast_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_grid24");
    group.sample_size(10);
    for spec_str in SCENARIOS {
        let w = BenchWorkload::resolve(spec_str, TOPOLOGY_SEED);
        group.bench_function(w.name.clone(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = w.run_trial(seed);
                assert!(r.completed, "{spec_str} must complete");
                r.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast_algorithms);
criterion_main!(benches);
