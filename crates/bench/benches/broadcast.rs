//! E7/E8 micro-bench: end-to-end broadcast, ours vs the baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_baselines::{bgi_broadcast, truncated_broadcast};
use rn_core::{compete_with_net, CompeteParams};
use rn_graph::generators;
use rn_sim::NetParams;

fn bench_broadcast_algorithms(c: &mut Criterion) {
    let g = generators::grid(24, 24);
    let net = NetParams::new(g.n(), 46);
    let mut group = c.benchmark_group("broadcast_grid24");
    group.sample_size(10);

    group.bench_function("bgi", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let out = bgi_broadcast(&g, net, 0, seed);
            assert!(out.completed);
            out.rounds
        });
    });

    group.bench_function("truncated_decay", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let out = truncated_broadcast(&g, net, 0, seed);
            assert!(out.completed);
            out.rounds
        });
    });

    let params = CompeteParams::default();
    group.bench_function("czumaj_davies", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = compete_with_net(&g, net, &[(0, 1)], &params, seed).expect("valid");
            assert!(r.completed);
            r.propagation_rounds
        });
    });
    group.finish();
}

criterion_group!(benches, bench_broadcast_algorithms);
criterion_main!(benches);
