//! E10 micro-bench: Compete with growing source sets (Theorem 4.1's
//! `|S|·D^0.125` term).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_core::{compete_with_net, CompeteParams};
use rn_graph::{generators, NodeId};
use rn_sim::NetParams;

fn bench_compete_sources(c: &mut Criterion) {
    let g = generators::grid(24, 24);
    let net = NetParams::new(g.n(), 46);
    let params = CompeteParams::default();
    let mut group = c.benchmark_group("compete_sources_grid24");
    group.sample_size(10);
    for s_count in [1usize, 16, 64] {
        let sources: Vec<(NodeId, u64)> =
            (0..s_count).map(|k| (((k * 577) % g.n()) as NodeId, k as u64 + 1)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(s_count), &s_count, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = compete_with_net(&g, net, &sources, &params, seed).expect("valid");
                assert!(r.completed);
                r.propagation_rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compete_sources);
criterion_main!(benches);
