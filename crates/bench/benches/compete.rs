//! E10 micro-bench: Compete with growing source sets (Theorem 4.1's
//! `|S|·D^0.125` term), plus the CD-exploiting analogue at one arity.
//!
//! Workloads are `ScenarioSpec` strings resolved through the scenario
//! registry (see `benches/broadcast.rs`) — the PR 4 partial port finished:
//! growing `K` is a string edit, and the same strings run as campaigns.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_bench::BenchWorkload;

/// The registry workloads this suite measures (one benchmark each).
const SCENARIOS: &[&str] = &[
    "compete(1)@grid(24x24)",
    "compete(16)@grid(24x24)",
    "compete(64)@grid(24x24)",
    "compete_cd(16)@grid(24x24)",
];

/// Graph-build seed: benches pin one topology instance across all runs.
const TOPOLOGY_SEED: u64 = 0xC0;

fn bench_compete_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("compete_sources_grid24");
    group.sample_size(10);
    for spec_str in SCENARIOS {
        let w = BenchWorkload::resolve(spec_str, TOPOLOGY_SEED);
        group.bench_function(w.name.clone(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = w.run_trial(seed);
                assert!(r.completed, "{spec_str} must complete");
                r.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compete_sources);
criterion_main!(benches);
