//! Scale suite: the engine hot path at `10⁵`–`10⁶` nodes.
//!
//! Four groups, all on the random-geometric topologies the scale-smoke
//! CI lane exercises:
//!
//! * `scale_engine_mode` — the same `10⁵`-node broadcast workload under
//!   [`EngineMode::Frontier`] (SoA/bitset scratch, the default) and
//!   [`EngineMode::Reference`] (stamp vectors). Round counts are
//!   byte-identical by construction — the differential tests pin that — so
//!   any wall-clock gap is pure engine-layout effect.
//! * `scale_coin_sampler` — [`DecayBroadcast`] with per-index coins (the
//!   registered default, sequence-pinned by the committed baselines) vs the
//!   batched SplitMix64 word sampler ([`CoinSampler::Batched`]).
//! * `scale_dense_rounds` — `decay(16)` on a mean-degree-`~125` RGG at
//!   `10⁵` nodes, frontier vs reference. The frontier engine's degree-sum
//!   trigger routes almost every round of this workload through the
//!   word-level dense kernel (bitmap-row OR/AND accumulation), so the gap
//!   over reference measures the dense kernel plus SoA state together.
//! * `scale_million` — one `10⁶`-node end-to-end trial, **gated** behind
//!   `RN_BENCH_SCALE_MILLION=1` so a default `cargo bench` stays minutes,
//!   not tens of minutes.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_bench::BenchWorkload;
use rn_decay::{CoinSampler, DecayBroadcast};
use rn_graph::TopologySpec;
use rn_sim::{with_default_engine_mode, CollisionModel, EngineMode, NetParams, Simulator};

/// The 10⁵-node workload both A/B groups share (same shape as the CI
/// scale-smoke cell, cheaper protocol so ten samples stay under a minute).
const SCALE_SCENARIO: &str = "bgi@rgg(100000,0.006)";

/// Graph-build seed: benches pin one topology instance across all runs.
const TOPOLOGY_SEED: u64 = 0x5CA1E;

fn bench_engine_modes(c: &mut Criterion) {
    let w = BenchWorkload::resolve(SCALE_SCENARIO, TOPOLOGY_SEED);
    let mut group = c.benchmark_group("scale_engine_mode");
    group.sample_size(5);
    for (mode, label) in [(EngineMode::Frontier, "frontier"), (EngineMode::Reference, "reference")]
    {
        group.bench_function(format!("{}/{label}", w.name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = with_default_engine_mode(mode, || w.run_trial(seed));
                assert!(r.completed, "{SCALE_SCENARIO} must complete under {label}");
                r.rounds
            });
        });
    }
    group.finish();
}

fn bench_coin_samplers(c: &mut Criterion) {
    let spec: TopologySpec = "rgg(100000,0.006)".parse().expect("topology spec parses");
    let g = spec.build(TOPOLOGY_SEED);
    let net = NetParams::new(g.n(), g.diameter_double_sweep());
    let mut group = c.benchmark_group("scale_coin_sampler");
    group.sample_size(5);
    for (sampler, label) in
        [(CoinSampler::PerIndex, "per_index"), (CoinSampler::Batched, "batched")]
    {
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut p = DecayBroadcast::with_coin_sampler(net, &[(0, 1)], seed, sampler);
                let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
                let stats = sim.run_until(&mut p, 1_000_000, |_, p| p.all_informed());
                assert!(p.all_informed(), "decay broadcast must complete under {label}");
                stats.rounds
            });
        });
    }
    group.finish();
}

fn bench_dense_rounds(c: &mut Criterion) {
    let w = BenchWorkload::resolve("decay(16)@rgg(100000,0.02)", TOPOLOGY_SEED);
    let mut group = c.benchmark_group("scale_dense_rounds");
    group.sample_size(5);
    for (mode, label) in [(EngineMode::Frontier, "frontier"), (EngineMode::Reference, "reference")]
    {
        group.bench_function(format!("{}/{label}", w.name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = with_default_engine_mode(mode, || w.run_trial(seed));
                assert!(r.completed, "dense decay broadcast must complete under {label}");
                r.rounds
            });
        });
    }
    group.finish();
}

fn bench_million(c: &mut Criterion) {
    if std::env::var("RN_BENCH_SCALE_MILLION").is_err() {
        println!("bench scale_million skipped (set RN_BENCH_SCALE_MILLION=1 to run)");
        return;
    }
    let w = BenchWorkload::resolve("bgi@rgg(1000000,0.002)", TOPOLOGY_SEED);
    let mut group = c.benchmark_group("scale_million");
    group.sample_size(2);
    group.bench_function(w.name.clone(), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = w.run_trial(seed);
            assert!(r.completed, "10⁶-node broadcast must complete");
            r.rounds
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_modes,
    bench_coin_samplers,
    bench_dense_rounds,
    bench_million
);
criterion_main!(benches);
