//! Scale suite: the engine hot path at `10⁵`–`10⁶` nodes.
//!
//! Four groups, all on the random-geometric topologies the scale-smoke
//! CI lane exercises:
//!
//! * `scale_engine_mode` — the same `10⁵`-node broadcast workload under
//!   [`EngineMode::Frontier`] (SoA/bitset scratch, the default) and
//!   [`EngineMode::Reference`] (stamp vectors). Round counts are
//!   byte-identical by construction — the differential tests pin that — so
//!   any wall-clock gap is pure engine-layout effect.
//! * `scale_coin_sampler` — [`DecayBroadcast`] with per-index coins (the
//!   registered default, sequence-pinned by the committed baselines) vs the
//!   batched SplitMix64 word sampler ([`CoinSampler::Batched`]).
//! * `scale_dense_rounds` — `decay(16)` on a mean-degree-`~125` RGG at
//!   `10⁵` nodes, frontier vs reference. The frontier engine's degree-sum
//!   trigger routes almost every round of this workload through the
//!   word-level dense kernel (bitmap-row OR/AND accumulation), so the gap
//!   over reference measures the dense kernel plus SoA state together.
//! * `scale_pooled_vs_fresh` — multi-trial `decay(16)` batches (ten at
//!   `10⁵` nodes, one hundred at the `2×10³` campaign scale) through the
//!   fresh per-trial path vs one long-lived [`TrialPool`] — the
//!   steady-state zero-allocation contract's wall-clock payoff.
//! * `scale_dense_cd` — `broadcast_cd` (collision detection pinned) on the
//!   same mean-degree-`~125` RGG, frontier vs reference: the CD word-level
//!   dense kernel A/B.
//! * `scale_million` — one `10⁶`-node end-to-end trial, **gated** behind
//!   `RN_BENCH_SCALE_MILLION=1` so a default `cargo bench` stays minutes,
//!   not tens of minutes.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_bench::BenchWorkload;
use rn_decay::{CoinSampler, DecayBroadcast};
use rn_graph::TopologySpec;
use rn_sim::{
    with_default_engine_mode, CollisionModel, EngineMode, NetParams, Simulator, TrialPool,
};

/// The 10⁵-node workload both A/B groups share (same shape as the CI
/// scale-smoke cell, cheaper protocol so ten samples stay under a minute).
const SCALE_SCENARIO: &str = "bgi@rgg(100000,0.006)";

/// Graph-build seed: benches pin one topology instance across all runs.
const TOPOLOGY_SEED: u64 = 0x5CA1E;

fn bench_engine_modes(c: &mut Criterion) {
    let w = BenchWorkload::resolve(SCALE_SCENARIO, TOPOLOGY_SEED);
    let mut group = c.benchmark_group("scale_engine_mode");
    group.sample_size(5);
    for (mode, label) in [(EngineMode::Frontier, "frontier"), (EngineMode::Reference, "reference")]
    {
        group.bench_function(format!("{}/{label}", w.name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = with_default_engine_mode(mode, || w.run_trial(seed));
                assert!(r.completed, "{SCALE_SCENARIO} must complete under {label}");
                r.rounds
            });
        });
    }
    group.finish();
}

fn bench_coin_samplers(c: &mut Criterion) {
    let spec: TopologySpec = "rgg(100000,0.006)".parse().expect("topology spec parses");
    let g = spec.build(TOPOLOGY_SEED);
    let net = NetParams::new(g.n(), g.diameter_double_sweep());
    let mut group = c.benchmark_group("scale_coin_sampler");
    group.sample_size(5);
    for (sampler, label) in
        [(CoinSampler::PerIndex, "per_index"), (CoinSampler::Batched, "batched")]
    {
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut p = DecayBroadcast::with_coin_sampler(net, &[(0, 1)], seed, sampler);
                let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
                let stats = sim.run_until(&mut p, 1_000_000, |_, p| p.all_informed());
                assert!(p.all_informed(), "decay broadcast must complete under {label}");
                stats.rounds
            });
        });
    }
    group.finish();
}

fn bench_dense_rounds(c: &mut Criterion) {
    let w = BenchWorkload::resolve("decay(16)@rgg(100000,0.02)", TOPOLOGY_SEED);
    let mut group = c.benchmark_group("scale_dense_rounds");
    group.sample_size(5);
    for (mode, label) in [(EngineMode::Frontier, "frontier"), (EngineMode::Reference, "reference")]
    {
        group.bench_function(format!("{}/{label}", w.name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = with_default_engine_mode(mode, || w.run_trial(seed));
                assert!(r.completed, "dense decay broadcast must complete under {label}");
                r.rounds
            });
        });
    }
    group.finish();
}

fn bench_pooled_vs_fresh(c: &mut Criterion) {
    // Multi-trial batches, matching the executor's unit of steady-state
    // reuse: the fresh arm pays per-trial protocol construction and scratch
    // allocation every trial; the pooled arm pays them once per *benchmark*
    // (the pool persists across iterations). Records are byte-identical —
    // the pooled_diff test pins that — so any gap is pure allocation and
    // initialization overhead. Two cells bracket the regime: at 10⁵ nodes
    // the per-trial setup is amortized into sub-second trials; at the
    // campaign scale (the smoke cell's 2×10³-node topology, hundred-trial
    // batches) setup is a visible fraction of every trial.
    let mut group = c.benchmark_group("scale_pooled_vs_fresh");
    group.sample_size(5);
    for (scenario, trials) in
        [("decay(16)@rgg(100000,0.006)", 10u64), ("decay(16)@rgg(2000,0.05)", 100u64)]
    {
        let w = BenchWorkload::resolve(scenario, TOPOLOGY_SEED);
        group.bench_function(format!("{}x{trials}/fresh", w.name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                let mut rounds = 0u64;
                for _ in 0..trials {
                    seed += 1;
                    let r = w.run_trial(seed);
                    assert!(r.completed, "decay must complete (fresh)");
                    rounds += r.rounds;
                }
                rounds
            });
        });
        group.bench_function(format!("{}x{trials}/pooled", w.name), |b| {
            let mut pool = TrialPool::new();
            let mut seed = 0u64;
            b.iter(|| {
                let mut rounds = 0u64;
                for _ in 0..trials {
                    seed += 1;
                    let r = w.runnable.run_trial_under_faults_pooled(
                        &w.graph,
                        w.net,
                        w.model,
                        seed,
                        &w.spec.faults,
                        &mut pool,
                    );
                    assert!(r.completed, "decay must complete (pooled)");
                    rounds += r.rounds;
                }
                rounds
            });
        });
    }
    group.finish();
}

fn bench_dense_cd(c: &mut Criterion) {
    // CD-model complement of `scale_dense_rounds`: `broadcast_cd` pins
    // collision detection, and at mean degree ~125 the frontier engine
    // routes nearly every round through the CD word-level dense kernel
    // (merged informed/uninformed event accumulation, busy-channel noise at
    // every silent listener). Reference runs the same rounds per-edge.
    let w = BenchWorkload::resolve("broadcast_cd@rgg(100000,0.02)", TOPOLOGY_SEED);
    let mut group = c.benchmark_group("scale_dense_cd");
    group.sample_size(5);
    for (mode, label) in [(EngineMode::Frontier, "frontier"), (EngineMode::Reference, "reference")]
    {
        group.bench_function(format!("{}/{label}", w.name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = with_default_engine_mode(mode, || w.run_trial(seed));
                assert!(r.completed, "CD dense broadcast must complete under {label}");
                r.rounds
            });
        });
    }
    group.finish();
}

fn bench_million(c: &mut Criterion) {
    if std::env::var("RN_BENCH_SCALE_MILLION").is_err() {
        println!("bench scale_million skipped (set RN_BENCH_SCALE_MILLION=1 to run)");
        return;
    }
    let w = BenchWorkload::resolve("bgi@rgg(1000000,0.002)", TOPOLOGY_SEED);
    let mut group = c.benchmark_group("scale_million");
    group.sample_size(2);
    group.bench_function(w.name.clone(), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = w.run_trial(seed);
            assert!(r.completed, "10⁶-node broadcast must complete");
            r.rounds
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_modes,
    bench_coin_samplers,
    bench_dense_rounds,
    bench_pooled_vs_fresh,
    bench_dense_cd,
    bench_million
);
criterion_main!(benches);
