//! E9 micro-bench: leader election — Algorithm 6 vs the binary-search
//! reduction.
//!
//! Workloads are `ScenarioSpec` strings resolved through the scenario
//! registry (see `benches/broadcast.rs`), keeping bench and experiment
//! workloads in sync by construction.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_bench::BenchWorkload;

/// The registry workloads this suite measures (one benchmark each).
const SCENARIOS: &[&str] = &["leader_election@grid(16x16)", "binsearch_le(bgi)@grid(16x16)"];

/// Graph-build seed: benches pin one topology instance across all runs.
const TOPOLOGY_SEED: u64 = 0x1E;

fn bench_leader_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("leader_election_grid16");
    group.sample_size(10);
    for spec_str in SCENARIOS {
        let w = BenchWorkload::resolve(spec_str, TOPOLOGY_SEED);
        group.bench_function(w.name.clone(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = w.run_trial(seed);
                assert!(r.completed, "{spec_str} must elect");
                r.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_leader_election);
criterion_main!(benches);
