//! E9 micro-bench: leader election — Algorithm 6 vs the binary-search
//! reduction.
//!
//! Workloads are `ScenarioSpec` strings resolved through the scenario
//! registry (see `benches/broadcast.rs`), keeping bench and experiment
//! workloads in sync by construction.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_bench::ScenarioSpec;
use rn_graph::Graph;
use rn_sim::{CollisionModel, NetParams};

/// The registry workloads this suite measures (one benchmark each).
const SCENARIOS: &[&str] = &["leader_election@grid(16x16)", "binsearch_le(bgi)@grid(16x16)"];

/// Graph-build seed: benches pin one topology instance across all runs.
const TOPOLOGY_SEED: u64 = 0x1E;

fn bench_leader_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("leader_election_grid16");
    group.sample_size(10);
    for spec_str in SCENARIOS {
        let spec: ScenarioSpec = spec_str.parse().expect("registry scenario");
        let g: Graph = spec.topology.build(TOPOLOGY_SEED);
        let net = NetParams::new(g.n(), g.diameter_double_sweep());
        let runnable = spec.protocol.instantiate();
        let model = runnable.effective_model(CollisionModel::NoCollisionDetection);
        group.bench_function(runnable.name(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let r = runnable.run_trial(&g, net, model, seed);
                assert!(r.completed, "{spec_str} must elect");
                r.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_leader_election);
criterion_main!(benches);
