//! E9 micro-bench: leader election — Algorithm 6 vs the binary-search
//! reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_baselines::{binary_search_leader_election, BroadcastKind};
use rn_core::{leader_election_with_net, CompeteParams};
use rn_graph::generators;
use rn_sim::NetParams;

fn bench_leader_election(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let net = NetParams::new(g.n(), 30);
    let mut group = c.benchmark_group("leader_election_grid16");
    group.sample_size(10);

    let params = CompeteParams::default();
    group.bench_function("algorithm6", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = leader_election_with_net(&g, net, &params, seed).expect("connected");
            assert!(r.compete.completed);
            r.compete.propagation_rounds
        });
    });

    group.bench_function("binary_search_bgi", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = binary_search_leader_election(&g, net, BroadcastKind::Bgi, 1.0, seed);
            r.rounds
        });
    });
    group.finish();
}

criterion_group!(benches, bench_leader_election);
criterion_main!(benches);
