//! [`ProtocolFamily`] registrations for the paper's algorithms: `broadcast`,
//! `broadcast_hw`, `compete(K[,POLICY])` and `leader_election`.
//!
//! All four are Compete-family protocols parameterized by [`CompeteParams`],
//! so they share one override schema ([`COMPETE_OVERRIDES`]): every
//! `{key=value}` pair addresses one `CompeteParams` field, class-validated
//! at parse time and applied by [`apply_overrides`] at instantiation.

use crate::params::CompeteParams;
use crate::scenario::{
    BroadcastScenario, CompeteScenario, LeaderElectionScenario, SourcePlacement,
};
use rn_sim::family::{
    parse_count, reject_args, OverrideClass, OverrideSpec, ParsedArgs, ProtocolFamily,
};
use rn_sim::Runnable;

/// The shared override schema of the Compete-family protocols: each key
/// addresses one [`CompeteParams`] field. Keys are deliberately short — they
/// live inside scenario strings.
// A `static` (not `const`): the four families' `overrides()` methods must
// all return the *same* slice address — the listing groups shared schemas
// by pointer identity, and const promotion does not guarantee one
// allocation per use.
pub static COMPETE_OVERRIDES: &[OverrideSpec] = &[
    OverrideSpec::new("curtail", "main-process curtailment multiplier", OverrideClass::Float),
    OverrideSpec::new("bg_curtail", "background curtailment multiplier", OverrideClass::Float),
    OverrideSpec::new("mu", "background density multiplier (bg_beta_factor)", OverrideClass::Float),
    OverrideSpec::new("coarse_exp", "coarse clustering exponent", OverrideClass::Float),
    OverrideSpec::new("bg_exp", "background clustering exponent", OverrideClass::Float),
    OverrideSpec::new("jmin", "fine-clustering j range lower fraction", OverrideClass::Float),
    OverrideSpec::new("jmax", "fine-clustering j range upper fraction", OverrideClass::Float),
    OverrideSpec::new("copies_exp", "fine clusterings per j (exponent)", OverrideClass::Float),
    OverrideSpec::new("copies_cap", "fine clusterings per j (hard cap, int)", OverrideClass::Int),
    OverrideSpec::new("seq_exp", "clustering-sequence length exponent", OverrideClass::Float),
    OverrideSpec::new("background", "Compete background process (0|1)", OverrideClass::Flag),
    OverrideSpec::new("icp_bg", "ICP background process (0|1)", OverrideClass::Flag),
    OverrideSpec::new("foreign", "accept foreign-cluster values (0|1)", OverrideClass::Flag),
    OverrideSpec::new("max_rounds", "safety budget factor (int)", OverrideClass::Int),
];

/// Applies schema-validated `(key, value)` override pairs to `p`. The keys
/// must come from [`COMPETE_OVERRIDES`] (the registry guarantees this for
/// parsed specs).
///
/// # Panics
///
/// Panics on a key that is not in the schema.
pub fn apply_overrides(p: &mut CompeteParams, pairs: &[(&'static OverrideSpec, f64)]) {
    for &(spec, v) in pairs {
        match spec.key {
            "curtail" => p.curtail_const = v,
            "bg_curtail" => p.bg_curtail_const = v,
            "mu" => p.bg_beta_factor = v,
            "coarse_exp" => p.coarse_beta_exp = v,
            "bg_exp" => p.bg_beta_exp = v,
            "jmin" => p.j_frac_min = v,
            "jmax" => p.j_frac_max = v,
            "copies_exp" => p.fine_copies_exp = v,
            "copies_cap" => p.fine_copies_cap = v as u32,
            "seq_exp" => p.seq_len_exp = v,
            "background" => p.background_process = v != 0.0,
            "icp_bg" => p.icp_background = v != 0.0,
            "foreign" => p.alg4_accept_foreign = v != 0.0,
            "max_rounds" => p.max_rounds_factor = v as u64,
            other => panic!("override key {other:?} is not in the Compete schema"),
        }
    }
}

/// `broadcast` — the paper's broadcast (Theorem 5.1, default parameters).
pub struct BroadcastFamily;

impl ProtocolFamily for BroadcastFamily {
    fn name(&self) -> &'static str {
        "broadcast"
    }

    fn grammar(&self) -> &'static str {
        "broadcast"
    }

    fn about(&self) -> &'static str {
        "the paper's broadcast (Theorem 5.1, default params)"
    }

    fn overrides(&self) -> &'static [OverrideSpec] {
        COMPETE_OVERRIDES
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        reject_args(self.name(), args)
    }

    fn instantiate(
        &self,
        _args: Option<&str>,
        overrides: &[(&'static OverrideSpec, f64)],
        label: &str,
    ) -> Box<dyn Runnable> {
        let mut p = CompeteParams::default();
        apply_overrides(&mut p, overrides);
        Box::new(BroadcastScenario::with_params(p, label))
    }
}

/// `broadcast_hw` — the same pipeline under Haeupler–Wajc curtailment.
pub struct BroadcastHwFamily;

impl ProtocolFamily for BroadcastHwFamily {
    fn name(&self) -> &'static str {
        "broadcast_hw"
    }

    fn grammar(&self) -> &'static str {
        "broadcast_hw"
    }

    fn about(&self) -> &'static str {
        "same pipeline under Haeupler-Wajc curtailment"
    }

    fn overrides(&self) -> &'static [OverrideSpec] {
        COMPETE_OVERRIDES
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        reject_args(self.name(), args)
    }

    fn instantiate(
        &self,
        _args: Option<&str>,
        overrides: &[(&'static OverrideSpec, f64)],
        label: &str,
    ) -> Box<dyn Runnable> {
        let mut p = CompeteParams::haeupler_wajc();
        apply_overrides(&mut p, overrides);
        Box::new(BroadcastScenario::with_params(p, label))
    }
}

/// `compete(K[,POLICY])` — Compete(S) with `K` distinct sources
/// (Theorem 4.1), placed per the [`SourcePlacement`] policy.
pub struct CompeteFamily;

impl CompeteFamily {
    /// Shared arg parser: `K` or `K,POLICY` (canonical form elides
    /// `uniform`).
    fn parse(&self, args: Option<&str>) -> Result<(usize, SourcePlacement), String> {
        let (k_arg, policy) = match args.map(|a| a.split_once(',')) {
            Some(Some((k, p))) => (Some(k.trim()), Some(p.trim())),
            _ => (args, None),
        };
        let placement = match policy {
            None => SourcePlacement::Uniform,
            Some(p) => p.parse()?,
        };
        Ok((parse_count(self.name(), k_arg)?, placement))
    }
}

impl ProtocolFamily for CompeteFamily {
    fn name(&self) -> &'static str {
        "compete"
    }

    fn grammar(&self) -> &'static str {
        "compete(K[,uniform|clustered|corner])"
    }

    fn about(&self) -> &'static str {
        "Compete(S) with K distinct sources (Theorem 4.1), placed per policy"
    }

    fn overrides(&self) -> &'static [OverrideSpec] {
        COMPETE_OVERRIDES
    }

    fn canonical_instances(&self) -> &'static [Option<&'static str>] {
        &[Some("4"), Some("4,clustered"), Some("4,corner")]
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        let (k, placement) = self.parse(args)?;
        let canonical = match placement {
            SourcePlacement::Uniform => k.to_string(),
            other => format!("{k},{other}"),
        };
        Ok(ParsedArgs::with_args(canonical).needing_nodes(k))
    }

    fn instantiate(
        &self,
        args: Option<&str>,
        overrides: &[(&'static OverrideSpec, f64)],
        label: &str,
    ) -> Box<dyn Runnable> {
        let (k, placement) = self.parse(args).expect("canonical compete args");
        let mut p = CompeteParams::default();
        apply_overrides(&mut p, overrides);
        Box::new(CompeteScenario::with_placement(k, placement, p, label))
    }
}

/// `leader_election` — Algorithm 6 (Theorem 5.2).
pub struct LeaderElectionFamily;

impl ProtocolFamily for LeaderElectionFamily {
    fn name(&self) -> &'static str {
        "leader_election"
    }

    fn grammar(&self) -> &'static str {
        "leader_election"
    }

    fn about(&self) -> &'static str {
        "Algorithm 6 leader election (Theorem 5.2)"
    }

    fn overrides(&self) -> &'static [OverrideSpec] {
        COMPETE_OVERRIDES
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        reject_args(self.name(), args)
    }

    fn instantiate(
        &self,
        _args: Option<&str>,
        overrides: &[(&'static OverrideSpec, f64)],
        label: &str,
    ) -> Box<dyn Runnable> {
        let mut p = CompeteParams::default();
        apply_overrides(&mut p, overrides);
        Box::new(LeaderElectionScenario::with_params(p, label))
    }
}

/// The protocol families this crate contributes to the registry.
pub fn families() -> Vec<&'static dyn ProtocolFamily> {
    vec![&BroadcastFamily, &BroadcastHwFamily, &CompeteFamily, &LeaderElectionFamily]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_parse_and_canonicalize_args() {
        let f = CompeteFamily;
        let p = f.parse_args(Some("4,uniform")).expect("parses");
        assert_eq!(p.canonical.as_deref(), Some("4"), "uniform is elided");
        assert_eq!(p.required_nodes, 4);
        let p = f.parse_args(Some("7, corner")).expect("parses");
        assert_eq!(p.canonical.as_deref(), Some("7,corner"));
        assert!(f.parse_args(None).is_err());
        assert!(f.parse_args(Some("0")).is_err());
        assert!(f.parse_args(Some("4,nearby")).is_err());
        assert!(BroadcastFamily.parse_args(Some("3")).is_err(), "broadcast takes no args");
        assert_eq!(BroadcastFamily.parse_args(None).expect("bare").required_nodes, 1);
    }

    #[test]
    fn overrides_apply_onto_the_family_base_params() {
        let schema = COMPETE_OVERRIDES;
        let by_key = |k: &str| schema.iter().find(|s| s.key == k).expect("schema key");
        let mut p = CompeteParams::default();
        apply_overrides(
            &mut p,
            &[(by_key("mu"), 0.2), (by_key("background"), 0.0), (by_key("copies_cap"), 3.0)],
        );
        assert_eq!(p.bg_beta_factor, 0.2);
        assert!(!p.background_process);
        assert_eq!(p.fine_copies_cap, 3);
        assert_eq!(p.curtail_const, CompeteParams::default().curtail_const);
        // Every schema key must be applicable (no typos between the schema
        // and the match).
        let mut p = CompeteParams::default();
        let pairs: Vec<_> = schema.iter().map(|s| (s, 1.0)).collect();
        apply_overrides(&mut p, &pairs);
    }

    #[test]
    fn instantiated_runnables_report_the_given_label() {
        for f in families() {
            for inst in f.canonical_instances() {
                let parsed = f.parse_args(*inst).expect("canonical instances parse");
                let label = match &parsed.canonical {
                    None => f.name().to_string(),
                    Some(a) => format!("{}({a})", f.name()),
                };
                let r = f.instantiate(parsed.canonical.as_deref(), &[], &label);
                assert_eq!(r.name(), label, "{} instance names match", f.name());
            }
        }
    }

    #[test]
    fn hw_base_params_survive_override_application() {
        let mut p = CompeteParams::haeupler_wajc();
        apply_overrides(&mut p, &[(&COMPETE_OVERRIDES[2], 0.5)]); // mu
        assert_eq!(p.curtail_mode, CompeteParams::haeupler_wajc().curtail_mode);
        assert_eq!(p.bg_beta_factor, 0.5);
    }
}
