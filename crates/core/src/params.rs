use rn_sim::NetParams;
use serde::{Deserialize, Serialize};

/// How schedule lengths are curtailed per Intra-Cluster Propagation — the
/// paper's central algorithmic lever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CurtailMode {
    /// Czumaj–Davies (this paper): each ICP with clustering parameter
    /// `β = 2^-j` runs for radius `Θ(log n / (β·log D))`, justified by
    /// Theorem 2.2. This is what removes Haeupler–Wajc's `log log n` factor.
    CzumajDavies,
    /// Haeupler–Wajc (PODC 2016): radius `Θ(log n · log log n / (β·log D))`
    /// — the predecessor's bound, used as the ablation baseline (E11).
    HaeuplerWajc,
}

/// Whether the sequence of fine clusterings is drawn per coarse cluster
/// (the paper's design, requiring the coarse layer for shared randomness) or
/// from a single global stream (an idealized ablation with free global
/// coordination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SequenceScope {
    /// Each coarse cluster draws its own random sequence (Algorithm 1).
    PerCoarseCluster,
    /// One global sequence shared by everyone (ablation).
    Global,
}

/// How precomputation (Algorithm 1 steps 1–6, Algorithm 2 steps 1–2) is
/// accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrecomputeMode {
    /// Clusterings/schedules are constructed by the oracle with the same
    /// distribution, and the paper's round formulas are *charged* (reported
    /// in [`crate::CompeteReport::charged_precompute_rounds`]). The
    /// propagation phase is always executed packet-level. Default.
    Charged,
    /// As `Charged`, but the charge is reported as zero. For ablations that
    /// isolate propagation cost.
    Ignored,
}

/// All tunable constants of the Compete algorithm. Every asymptotic constant
/// of the paper appears here explicitly; defaults are the practical
/// rescalings documented in `DESIGN.md` §4.4 (the paper's literal constants
/// like `0.01·log D` degenerate at implementable scales).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompeteParams {
    /// Coarse clustering uses `β = D^-coarse_beta_exp` (paper: 0.5).
    pub coarse_beta_exp: f64,
    /// Fine clustering `j` range lower fraction: `j_min = max(1, j_frac_min·log D)`
    /// (paper: 0.01).
    pub j_frac_min: f64,
    /// Fine clustering `j` range upper fraction: `j_max = max(j_min+1, j_frac_max·log D)`
    /// (paper: 0.1).
    pub j_frac_max: f64,
    /// Number of fine clusterings per `j` is `max(1, D^fine_copies_exp)`
    /// capped at [`CompeteParams::fine_copies_cap`] (paper: `D^0.2`).
    pub fine_copies_exp: f64,
    /// Hard cap on fine clusterings per `j` (memory guard).
    pub fine_copies_cap: u32,
    /// Length of each coarse cluster's clustering sequence is
    /// `D^seq_len_exp` (paper: `D^0.99`); the sequence is consumed lazily,
    /// so this only bounds the charged transmission cost and the round
    /// budget.
    pub seq_len_exp: f64,
    /// Multiplier `c` in the main-process curtailment radius
    /// `ℓ(j) = c·2^j·log n / log D`.
    pub curtail_const: f64,
    /// Curtailment regime (this paper vs Haeupler–Wajc).
    pub curtail_mode: CurtailMode,
    /// Background process uses `β = bg_beta_factor · D^-bg_beta_exp`
    /// (paper: exponent 0.1; the factor is a practical-scale correction —
    /// at implementable diameters `D^-0.1` is ≈ 0.5–0.7, which would make
    /// "background" clusters *smaller* than fine ones, inverting the
    /// asymptotic design; see `DESIGN.md` §4.4).
    pub bg_beta_exp: f64,
    /// Multiplier on the background β (see [`CompeteParams::bg_beta_exp`]).
    pub bg_beta_factor: f64,
    /// Multiplier in the background curtailment radius `ℓ_bg = c·log n / β`.
    pub bg_curtail_const: f64,
    /// Run the Compete background process (Algorithm 2)? Off = ablation E11.
    pub background_process: bool,
    /// Run the ICP background process (Algorithm 4)? Off = ablation E11.
    pub icp_background: bool,
    /// Whether Algorithm-4 receivers merge values heard from *other*
    /// clusters. The paper states Algorithm 4 in terms of a node's own
    /// cluster, but physically a uniquely-received transmission is received
    /// whatever its origin, and the value is a true source message — merging
    /// can only help. Keeping it on (default) prevents a measure-zero
    /// deadlock on very small graphs where every precomputed clustering
    /// happens to cut the same edge; turning it off gives the paper-literal
    /// filter (E11 ablation).
    pub alg4_accept_foreign: bool,
    /// Sequence randomness scope.
    pub sequence_scope: SequenceScope,
    /// Precomputation accounting.
    pub precompute: PrecomputeMode,
    /// Safety budget: the run aborts after
    /// `max_rounds_factor · (D+1) · log²n + 10⁵` propagation rounds.
    pub max_rounds_factor: u64,
}

impl Default for CompeteParams {
    fn default() -> Self {
        CompeteParams {
            coarse_beta_exp: 0.5,
            j_frac_min: 0.01,
            j_frac_max: 0.1,
            fine_copies_exp: 0.2,
            fine_copies_cap: 6,
            seq_len_exp: 0.99,
            curtail_const: 3.0,
            curtail_mode: CurtailMode::CzumajDavies,
            bg_beta_exp: 0.1,
            bg_beta_factor: 0.25,
            bg_curtail_const: 2.0,
            background_process: true,
            icp_background: true,
            alg4_accept_foreign: true,
            sequence_scope: SequenceScope::PerCoarseCluster,
            precompute: PrecomputeMode::Charged,
            max_rounds_factor: 64,
        }
    }
}

impl CompeteParams {
    /// The Haeupler–Wajc ablation configuration: identical pipeline with the
    /// predecessor's longer, fixed curtailment.
    pub fn haeupler_wajc() -> CompeteParams {
        CompeteParams { curtail_mode: CurtailMode::HaeuplerWajc, ..CompeteParams::default() }
    }

    /// Coarse clustering rate `β_c = D^-coarse_beta_exp`, clamped to `(0, 1]`.
    pub fn coarse_beta(&self, net: &NetParams) -> f64 {
        let d = net.diameter().max(2) as f64;
        d.powf(-self.coarse_beta_exp).clamp(1e-12, 1.0)
    }

    /// Background clustering rate `β_bg = factor · D^-bg_beta_exp`, clamped
    /// to `(0, 1]`.
    pub fn bg_beta(&self, net: &NetParams) -> f64 {
        let d = net.diameter().max(2) as f64;
        (self.bg_beta_factor * d.powf(-self.bg_beta_exp)).clamp(1e-12, 1.0)
    }

    /// The integer `j` values of the fine clusterings (so `β = 2^-j`), the
    /// practical rescaling of the paper's `[0.01·log D, 0.1·log D]`.
    pub fn j_values(&self, net: &NetParams) -> Vec<u32> {
        let mut js = Vec::new();
        self.j_values_into(net, &mut js);
        js
    }

    /// [`CompeteParams::j_values`] into a reused buffer (pooled precompute
    /// rebuilds refresh the list without allocating).
    pub fn j_values_into(&self, net: &NetParams, out: &mut Vec<u32>) {
        let log_d = net.log2_d() as f64;
        let j_min = ((self.j_frac_min * log_d).round() as u32).max(1);
        let j_max = ((self.j_frac_max * log_d).round() as u32).max(j_min + 1);
        out.clear();
        out.extend(j_min..=j_max);
    }

    /// Number of fine clustering copies per `j`: `min(D^fine_copies_exp, cap)`.
    pub fn fine_copies(&self, net: &NetParams) -> u32 {
        (net.d_pow(self.fine_copies_exp, 1) as u32).min(self.fine_copies_cap).max(1)
    }

    /// Sequence length `D^seq_len_exp` (≥ 1).
    pub fn seq_len(&self, net: &NetParams) -> u64 {
        net.d_pow(self.seq_len_exp, 1)
    }

    /// Main-process curtailment radius for fine parameter `j`:
    /// `ℓ(j) = ⌈c·2^j·log n / log D⌉` (Czumaj–Davies), times `log log n`
    /// under [`CurtailMode::HaeuplerWajc`].
    pub fn curtail_radius(&self, net: &NetParams, j: u32) -> u32 {
        let base = self.curtail_const * (2.0f64).powi(j as i32) * net.log2_n() as f64
            / net.log2_d() as f64;
        let factor = match self.curtail_mode {
            CurtailMode::CzumajDavies => 1.0,
            CurtailMode::HaeuplerWajc => ((net.log2_n() as f64).log2()).max(1.0),
        };
        (base * factor).ceil().max(1.0) as u32
    }

    /// Background curtailment radius `ℓ_bg = ⌈c·log n / β_bg⌉`.
    pub fn bg_curtail_radius(&self, net: &NetParams) -> u32 {
        (self.bg_curtail_const * net.log2_n() as f64 / self.bg_beta(net)).ceil().max(1.0) as u32
    }

    /// Safety budget on propagation rounds.
    pub fn max_rounds(&self, net: &NetParams) -> u64 {
        let log_n = net.log2_n() as u64;
        self.max_rounds_factor * (net.diameter() as u64 + 1) * log_n * log_n + 100_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetParams {
        NetParams::new(4096, 512)
    }

    #[test]
    fn default_is_czumaj_davies() {
        let p = CompeteParams::default();
        assert_eq!(p.curtail_mode, CurtailMode::CzumajDavies);
        assert!(p.background_process && p.icp_background);
    }

    #[test]
    fn betas_scale_with_diameter() {
        let p = CompeteParams::default();
        let n = net(); // D = 512
        assert!((p.coarse_beta(&n) - (512f64).powf(-0.5)).abs() < 1e-12);
        assert!((p.bg_beta(&n) - 0.25 * (512f64).powf(-0.1)).abs() < 1e-12);
        // Coarse clusters are much larger than background fine clusters.
        assert!(p.coarse_beta(&n) < p.bg_beta(&n));
    }

    #[test]
    fn j_range_is_nonempty_and_ordered() {
        let p = CompeteParams::default();
        for d in [2u32, 16, 512, 65535] {
            let n = NetParams::new(1 << 16, d);
            let js = p.j_values(&n);
            assert!(!js.is_empty());
            assert!(js.windows(2).all(|w| w[0] < w[1]));
            assert!(js[0] >= 1);
        }
    }

    #[test]
    fn curtail_radius_grows_with_j_and_mode() {
        let p = CompeteParams::default();
        let n = net();
        let r1 = p.curtail_radius(&n, 1);
        let r3 = p.curtail_radius(&n, 3);
        assert!(r3 > r1, "bigger j (smaller beta) → larger radius");
        let hw = CompeteParams::haeupler_wajc();
        assert!(
            hw.curtail_radius(&n, 2) > p.curtail_radius(&n, 2),
            "HW mode runs schedules longer (the log log n factor)"
        );
    }

    #[test]
    fn copies_and_seq_len_respect_caps() {
        let p = CompeteParams::default();
        let n = net();
        assert!(p.fine_copies(&n) <= p.fine_copies_cap);
        assert!(p.fine_copies(&n) >= 1);
        assert!(p.seq_len(&n) >= 1);
        // D = 512: D^0.99 ≈ 482.
        assert!((p.seq_len(&n) as i64 - 482).abs() <= 2);
    }

    #[test]
    fn max_rounds_budget_is_superlinear_in_d() {
        let p = CompeteParams::default();
        let small = p.max_rounds(&NetParams::new(1024, 32));
        let large = p.max_rounds(&NetParams::new(1024, 512));
        assert!(large > 4 * (small - 100_000));
    }
}
