//! [`Runnable`] scenarios for the paper's algorithms — the plug the
//! campaign registry uses to run Compete, broadcasting and leader election
//! uniformly against any topology and collision model.

use crate::api::{
    compete_pooled, compete_scheduled, leader_election_pooled, leader_election_scheduled,
    CompetePool,
};
use crate::params::CompeteParams;
use rn_graph::{traversal, Graph, NodeId};
use rn_sim::{rng, CollisionModel, FaultSchedule, NetParams, Runnable, TrialPool, TrialRecord};
use std::fmt;
use std::str::FromStr;

/// Broadcasting (Theorem 5.1): `Compete({node 0})` with the given parameter
/// set. `label` is the registry name, so the same struct serves the default
/// Czumaj–Davies configuration and ablation variants (e.g. Haeupler–Wajc
/// curtailment).
#[derive(Debug, Clone)]
pub struct BroadcastScenario {
    /// Algorithm constants for this variant.
    pub params: CompeteParams,
    /// Registry name (e.g. `"broadcast"`, `"broadcast_hw"`).
    pub label: String,
}

impl BroadcastScenario {
    /// The paper's default configuration, named `broadcast`.
    pub fn czumaj_davies() -> BroadcastScenario {
        BroadcastScenario { params: CompeteParams::default(), label: "broadcast".into() }
    }

    /// The Haeupler–Wajc curtailment ablation, named `broadcast_hw`.
    pub fn haeupler_wajc() -> BroadcastScenario {
        BroadcastScenario { params: CompeteParams::haeupler_wajc(), label: "broadcast_hw".into() }
    }

    /// An explicit parameter set under an explicit registry name (how the
    /// scenario registry materializes per-cell `{key=value}` overrides).
    pub fn with_params(params: CompeteParams, label: impl Into<String>) -> BroadcastScenario {
        BroadcastScenario { params, label: label.into() }
    }
}

impl Runnable for BroadcastScenario {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        let r = compete_scheduled(g, net, &[(0, 1)], &self.params, model, seed, faults)
            .expect("campaign graphs are connected with an in-range source");
        TrialRecord::new(r.completed, r.total_rounds, r.metrics)
    }

    fn run_trial_pooled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        let (engine, cp) = pool.parts::<CompetePool>(CompetePool::new);
        let r = compete_pooled(g, net, &[(0, 1)], &self.params, model, seed, faults, engine, cp)
            .expect("campaign graphs are connected with an in-range source");
        TrialRecord::new(r.completed, r.total_rounds, r.metrics)
    }
}

/// Where [`CompeteScenario`] places its `K` sources on the graph.
///
/// The paper's Theorem 4.1 bounds hold for *any* source set; the placement
/// axis probes how much the constants depend on source geometry — uniform
/// spread (every cluster sees a source early) versus adversarially
/// concentrated sets that must escape one neighborhood first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourcePlacement {
    /// Distinct uniform-random nodes, redrawn each trial (the default).
    #[default]
    Uniform,
    /// A BFS ball: the `K` nodes nearest a trial-random center (ties broken
    /// by node id), modelling a localized burst of messages.
    Clustered,
    /// The deterministic worst corner: the `K` nodes nearest node 0 —
    /// reproducible across trials, so only protocol randomness varies.
    Corner,
}

impl SourcePlacement {
    /// Every placement policy, in listing order.
    pub const ALL: &'static [SourcePlacement] =
        &[SourcePlacement::Uniform, SourcePlacement::Clustered, SourcePlacement::Corner];

    /// The policy's stable string form (used in `compete(K,POLICY)` specs).
    pub fn as_str(self) -> &'static str {
        match self {
            SourcePlacement::Uniform => "uniform",
            SourcePlacement::Clustered => "clustered",
            SourcePlacement::Corner => "corner",
        }
    }

    /// Picks `k` distinct source nodes on `g` under this policy. `seed` is
    /// the trial's placement stream (ignored by deterministic policies).
    ///
    /// # Panics
    ///
    /// Panics if `k > g.n()`.
    pub fn place(self, g: &Graph, k: usize, seed: u64) -> Vec<NodeId> {
        let (mut idx, mut out) = (Vec::new(), Vec::new());
        self.place_into(g, k, seed, &mut idx, &mut out);
        out
    }

    /// [`SourcePlacement::place`] into caller-owned buffers (both cleared
    /// first): `idx_scratch` holds the raw Floyd sample, `out` the node
    /// ids. Pooled trial loops reuse the buffers across trials, keeping
    /// steady-state `Uniform` placement off the heap (the BFS-ball
    /// policies still allocate their traversal internally).
    ///
    /// # Panics
    ///
    /// Panics if `k > g.n()`.
    pub fn place_into(
        self,
        g: &Graph,
        k: usize,
        seed: u64,
        idx_scratch: &mut Vec<usize>,
        out: &mut Vec<NodeId>,
    ) {
        assert!(k <= g.n(), "cannot place {k} distinct sources on {} nodes", g.n());
        out.clear();
        match self {
            SourcePlacement::Uniform => {
                let mut srng = rng::stream_rng(seed, 0x50C);
                rng::sample_distinct_into(&mut srng, k, g.n(), idx_scratch);
                out.extend(idx_scratch.iter().map(|&v| v as NodeId));
            }
            SourcePlacement::Clustered => {
                let center = (rng::derive(seed, 0xCE27) % g.n() as u64) as NodeId;
                out.extend(nearest_k(g, center, k));
            }
            SourcePlacement::Corner => out.extend(nearest_k(g, 0, k)),
        }
    }
}

/// The `k` nodes nearest `center` in BFS distance, ties broken by node id —
/// deterministic for a fixed graph.
///
/// The walk stops at the first layer that fills the ball, so the per-trial
/// cost is proportional to the ball (plus its frontier), not to a
/// whole-graph BFS and an `O(n log n)` sort — placement must stay cheap on
/// the million-node sweeps the campaign executor targets.
fn nearest_k(g: &Graph, center: NodeId, k: usize) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::with_capacity(k);
    let mut walker = traversal::Bfs::new(g, &[center]);
    loop {
        // Frontier order is traversal order; sorting one layer restores the
        // (distance, id) tie-break of a full sort.
        let mut layer = walker.frontier().to_vec();
        layer.sort_unstable();
        layer.truncate(k - out.len());
        out.extend(layer);
        if out.len() == k {
            return out;
        }
        if !walker.advance() {
            // Fewer than k reachable nodes (disconnected graph): fill with
            // the unreachable remainder in id order, matching a full
            // (distance, id) sort with distance = ∞.
            let dist = walker.dist();
            out.extend(g.nodes().filter(|&v| dist[v as usize] == u32::MAX).take(k - out.len()));
            return out;
        }
    }
}

impl fmt::Display for SourcePlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for SourcePlacement {
    type Err = String;

    fn from_str(s: &str) -> Result<SourcePlacement, String> {
        SourcePlacement::ALL.iter().copied().find(|p| p.as_str() == s.trim()).ok_or_else(|| {
            format!(
                "unknown source placement {s:?} (known: {})",
                SourcePlacement::ALL.iter().map(|p| p.as_str()).collect::<Vec<_>>().join(" | ")
            )
        })
    }
}

/// Multi-source **Compete(S)** (Theorem 4.1) with `sources` sources holding
/// distinct messages, placed per [`SourcePlacement`]. Sources are always
/// placed on *distinct* nodes each trial — sampling with replacement would
/// silently merge two messages onto one node, measuring `Compete(S')` with
/// `|S'| < |S|`.
#[derive(Debug, Clone)]
pub struct CompeteScenario {
    /// Algorithm constants.
    pub params: CompeteParams,
    /// Number of sources `|S| ≥ 1` (placed on distinct nodes per trial).
    pub sources: usize,
    /// Where the sources land on the graph.
    pub placement: SourcePlacement,
    /// Registry name (e.g. `"compete(4)"`, `"compete(4,corner){mu=0.2}"`).
    pub label: String,
}

impl CompeteScenario {
    /// Default-parameter Compete with `sources` uniform-random sources.
    ///
    /// # Panics
    ///
    /// Panics if `sources == 0` — a sourceless Compete is meaningless and
    /// used to be silently clamped to 1.
    pub fn new(sources: usize) -> CompeteScenario {
        CompeteScenario::with_params(
            sources,
            CompeteParams::default(),
            format!("compete({sources})"),
        )
    }

    /// An explicit parameter set under an explicit registry name, with
    /// uniform placement.
    ///
    /// # Panics
    ///
    /// Panics if `sources == 0`.
    pub fn with_params(
        sources: usize,
        params: CompeteParams,
        label: impl Into<String>,
    ) -> CompeteScenario {
        CompeteScenario::with_placement(sources, SourcePlacement::Uniform, params, label)
    }

    /// Fully explicit constructor: source count, placement policy,
    /// parameters and registry name (how the scenario registry materializes
    /// `compete(K,POLICY){overrides}` specs).
    ///
    /// # Panics
    ///
    /// Panics if `sources == 0`.
    pub fn with_placement(
        sources: usize,
        placement: SourcePlacement,
        params: CompeteParams,
        label: impl Into<String>,
    ) -> CompeteScenario {
        assert!(sources >= 1, "compete needs at least one source (got 0)");
        CompeteScenario { params, sources, placement, label: label.into() }
    }
}

impl Runnable for CompeteScenario {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        assert!(
            self.sources <= g.n(),
            "compete({}) needs {} distinct sources but the graph has only {} nodes",
            self.sources,
            self.sources,
            g.n()
        );
        // Source placement is part of the trial's randomness (for the
        // randomized policies): distinct nodes, drawn from the trial seed on
        // a separate stream, holding values 1..=K in placement order.
        let sources: Vec<(NodeId, u64)> = self
            .placement
            .place(g, self.sources, seed)
            .into_iter()
            .enumerate()
            .map(|(k, v)| (v, (k + 1) as u64))
            .collect();
        let r = compete_scheduled(g, net, &sources, &self.params, model, seed, faults)
            .expect("campaign graphs are connected with in-range sources");
        TrialRecord::new(r.completed, r.total_rounds, r.metrics)
    }

    fn run_trial_pooled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        assert!(
            self.sources <= g.n(),
            "compete({}) needs {} distinct sources but the graph has only {} nodes",
            self.sources,
            self.sources,
            g.n()
        );
        // Per-trial source placement draws from the pool too: uniform
        // placement fills reused buffers, so steady-state trials stay on
        // the zero-allocation contract the alloc_count gate pins.
        let (engine, cp) = pool.parts::<CompetePool>(CompetePool::new);
        let mut sources = std::mem::take(&mut cp.sources);
        self.placement.place_into(g, self.sources, seed, &mut cp.place_idx, &mut cp.source_ids);
        sources.clear();
        sources.extend(cp.source_ids.iter().enumerate().map(|(k, &v)| (v, (k + 1) as u64)));
        let r = compete_pooled(g, net, &sources, &self.params, model, seed, faults, engine, cp)
            .expect("campaign graphs are connected with in-range sources");
        cp.sources = sources; // hand the buffer back for the next trial
        TrialRecord::new(r.completed, r.total_rounds, r.metrics)
    }
}

/// Leader election (Algorithm 6, Theorem 5.2): candidate self-selection,
/// random IDs, Compete on the IDs. A trial completes when Compete finishes
/// and exactly one node holds the winning ID.
#[derive(Debug, Clone)]
pub struct LeaderElectionScenario {
    /// Algorithm constants.
    pub params: CompeteParams,
    /// Registry name (e.g. `"leader_election"`,
    /// `"leader_election{curtail=5}"`).
    pub label: String,
}

impl LeaderElectionScenario {
    /// Default-parameter leader election.
    pub fn new() -> LeaderElectionScenario {
        LeaderElectionScenario::with_params(CompeteParams::default(), "leader_election")
    }

    /// An explicit parameter set under an explicit registry name.
    pub fn with_params(params: CompeteParams, label: impl Into<String>) -> LeaderElectionScenario {
        LeaderElectionScenario { params, label: label.into() }
    }
}

impl Default for LeaderElectionScenario {
    fn default() -> Self {
        LeaderElectionScenario::new()
    }
}

impl Runnable for LeaderElectionScenario {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        let r = leader_election_scheduled(g, net, &self.params, model, seed, faults)
            .expect("campaign graphs are connected");
        TrialRecord::new(
            r.compete.completed && r.unique_winner,
            r.compete.total_rounds,
            r.compete.metrics,
        )
    }

    fn run_trial_pooled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        let (engine, cp) = pool.parts::<CompetePool>(CompetePool::new);
        let r = leader_election_pooled(g, net, &self.params, model, seed, faults, engine, cp)
            .expect("campaign graphs are connected");
        TrialRecord::new(
            r.compete.completed && r.unique_winner,
            r.compete.total_rounds,
            r.compete.metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    fn net_of(g: &Graph) -> NetParams {
        NetParams::of_graph(g)
    }

    #[test]
    fn broadcast_scenario_completes_on_grid() {
        let g = generators::grid(8, 8);
        let s = BroadcastScenario::czumaj_davies();
        assert_eq!(s.name(), "broadcast");
        let r = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 3);
        assert!(r.completed);
        assert!(r.rounds > 0);
        assert!(r.metrics.deliveries > 0);
    }

    #[test]
    fn leader_election_scenario_elects() {
        let g = generators::grid(8, 8);
        let s = LeaderElectionScenario::new();
        assert_eq!(s.name(), "leader_election");
        let r = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 5);
        assert!(r.completed);
    }

    #[test]
    fn compete_scenario_is_seed_deterministic() {
        let g = generators::grid(6, 6);
        let s = CompeteScenario::new(4);
        assert_eq!(s.name(), "compete(4)");
        let a = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 11);
        let b = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 11);
        assert_eq!(a, b, "same seed, same trial");
        assert!(a.completed);
    }

    #[test]
    fn compete_scenario_places_all_sources_distinctly() {
        // Regression: with-replacement sampling would collide two of K
        // messages onto one node with probability ≈ 1 - exp(-K²/2n); on a
        // 9-node graph with 9 sources it is certain to, across seeds. With
        // distinct placement, Compete(S) sees exactly |S| = n sources, so
        // the run completes with every node a source.
        let g = generators::grid(3, 3);
        let s = CompeteScenario::new(9);
        for seed in 0..16 {
            let r = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, seed);
            assert!(r.completed, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn compete_scenario_rejects_zero_sources() {
        // Regression: K = 0 used to be silently clamped to 1.
        CompeteScenario::new(0);
    }

    #[test]
    #[should_panic(expected = "only 9 nodes")]
    fn compete_scenario_rejects_more_sources_than_nodes() {
        let g = generators::grid(3, 3);
        let s = CompeteScenario::new(10);
        s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 1);
    }

    #[test]
    fn placement_policy_strings_round_trip() {
        for p in SourcePlacement::ALL {
            let back: SourcePlacement = p.as_str().parse().expect("round trips");
            assert_eq!(back, *p);
        }
        assert!("nearby".parse::<SourcePlacement>().is_err());
    }

    #[test]
    fn corner_placement_is_the_bfs_ball_around_node_zero() {
        // On a path, the 4 nodes nearest node 0 are exactly 0..4, every
        // trial, regardless of seed.
        let g = generators::path(100);
        for seed in 0..4 {
            assert_eq!(SourcePlacement::Corner.place(&g, 4, seed), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn nearest_k_matches_the_full_sort_reference() {
        // The layer-by-layer early-exit walk must agree with the
        // definitional "sort all nodes by (BFS distance, id)" computation —
        // including on a disconnected graph, where the unreachable
        // remainder fills in id order.
        let reference = |g: &Graph, center: NodeId, k: usize| -> Vec<NodeId> {
            let dist = traversal::bfs(g, center);
            let mut order: Vec<NodeId> = g.nodes().collect();
            order.sort_by_key(|&v| (dist[v as usize], v));
            order.truncate(k);
            order
        };
        let grid = generators::grid(7, 5);
        for center in [0, 17, 34] {
            for k in [1, 4, 12, 35] {
                assert_eq!(
                    nearest_k(&grid, center, k),
                    reference(&grid, center, k),
                    "grid center {center} k {k}"
                );
            }
        }
        let disconnected = Graph::from_edges(6, &[(0, 1), (1, 2), (4, 5)]).expect("builds");
        for k in [2, 4, 6] {
            assert_eq!(nearest_k(&disconnected, 1, k), reference(&disconnected, 1, k), "k {k}");
        }
    }

    #[test]
    fn clustered_placement_is_a_tight_ball_around_a_random_center() {
        // On a path, a BFS ball is a contiguous interval: K nodes spanning
        // at most K-1 hops — far tighter than uniform placement, which
        // spreads across the whole path with overwhelming probability.
        let g = generators::path(100);
        for seed in 0..8 {
            let mut s = SourcePlacement::Clustered.place(&g, 5, seed);
            s.sort_unstable();
            assert_eq!(s.len(), 5);
            let span = s[4] - s[0];
            assert!(span <= 5, "ball of 5 nodes spans {span} hops: {s:?}");
            assert!(s.windows(2).all(|w| w[0] != w[1]), "distinct sources");
        }
        // Different seeds move the center.
        let a = SourcePlacement::Clustered.place(&g, 5, 1);
        let b = SourcePlacement::Clustered.place(&g, 5, 2);
        assert_ne!(a, b, "center is part of trial randomness");
    }

    #[test]
    fn compete_scenario_with_placement_completes_and_is_deterministic() {
        let g = generators::grid(6, 6);
        for &placement in SourcePlacement::ALL {
            let s = CompeteScenario::with_placement(
                4,
                placement,
                CompeteParams::default(),
                format!("compete(4,{placement})"),
            );
            let a = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 11);
            let b = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 11);
            assert_eq!(a, b, "{placement}: same seed, same trial");
            assert!(a.completed, "{placement}: completes on grid-6x6");
        }
    }

    #[test]
    fn pooled_trials_match_fresh_trials_exactly() {
        // One TrialPool carried across scenarios, graphs, models and seeds:
        // every pooled record must equal the fresh-path record bit for bit.
        let graphs = [generators::grid(8, 8), generators::path(60)];
        let scenarios: Vec<Box<dyn Runnable>> = vec![
            Box::new(BroadcastScenario::czumaj_davies()),
            Box::new(CompeteScenario::new(3)),
            Box::new(LeaderElectionScenario::new()),
        ];
        let mut pool = TrialPool::new();
        for g in &graphs {
            let net = net_of(g);
            for s in &scenarios {
                for model in
                    [CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection]
                {
                    for seed in 0..2u64 {
                        let fresh = s.run_trial_scheduled(g, net, model, seed, None);
                        let pooled = s.run_trial_pooled(g, net, model, seed, None, &mut pool);
                        assert_eq!(fresh, pooled, "{} seed {seed}", s.name());
                    }
                }
            }
        }
    }

    #[test]
    fn broadcast_scenario_degrades_gracefully_under_faults() {
        use rn_sim::FaultPlan;
        // The paper's broadcast run under the uniform fault seam: with every
        // non-source node jamming at probability 1, nothing can spread — and
        // the trial must report that honestly rather than complete falsely.
        let g = generators::grid(4, 4);
        let s = BroadcastScenario::czumaj_davies();
        let r = s.run_trial_under_faults(
            &g,
            net_of(&g),
            CollisionModel::NoCollisionDetection,
            3,
            &FaultPlan::jam(16, 1.0),
        );
        assert!(!r.completed, "no false completion under total jamming");
        // A mild fault plan still runs deterministically.
        let plan = FaultPlan::jam(2, 0.3);
        let a = s.run_trial_under_faults(
            &g,
            net_of(&g),
            CollisionModel::NoCollisionDetection,
            3,
            &plan,
        );
        let b = s.run_trial_under_faults(
            &g,
            net_of(&g),
            CollisionModel::NoCollisionDetection,
            3,
            &plan,
        );
        assert_eq!(a, b);
    }
}
