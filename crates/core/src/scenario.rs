//! [`Runnable`] scenarios for the paper's algorithms — the plug the
//! campaign registry uses to run Compete, broadcasting and leader election
//! uniformly against any topology and collision model.

use crate::api::{compete_with_model, leader_election_with_model};
use crate::params::CompeteParams;
use rn_graph::{Graph, NodeId};
use rn_sim::{rng, CollisionModel, NetParams, Runnable, TrialRecord};

/// Broadcasting (Theorem 5.1): `Compete({node 0})` with the given parameter
/// set. `label` is the registry name, so the same struct serves the default
/// Czumaj–Davies configuration and ablation variants (e.g. Haeupler–Wajc
/// curtailment).
#[derive(Debug, Clone)]
pub struct BroadcastScenario {
    /// Algorithm constants for this variant.
    pub params: CompeteParams,
    /// Registry name (e.g. `"broadcast"`, `"broadcast_hw"`).
    pub label: String,
}

impl BroadcastScenario {
    /// The paper's default configuration, named `broadcast`.
    pub fn czumaj_davies() -> BroadcastScenario {
        BroadcastScenario { params: CompeteParams::default(), label: "broadcast".into() }
    }

    /// The Haeupler–Wajc curtailment ablation, named `broadcast_hw`.
    pub fn haeupler_wajc() -> BroadcastScenario {
        BroadcastScenario { params: CompeteParams::haeupler_wajc(), label: "broadcast_hw".into() }
    }

    /// An explicit parameter set under an explicit registry name (how the
    /// scenario registry materializes per-cell `{key=value}` overrides).
    pub fn with_params(params: CompeteParams, label: impl Into<String>) -> BroadcastScenario {
        BroadcastScenario { params, label: label.into() }
    }
}

impl Runnable for BroadcastScenario {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_trial(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
    ) -> TrialRecord {
        let r = compete_with_model(g, net, &[(0, 1)], &self.params, model, seed)
            .expect("campaign graphs are connected with an in-range source");
        TrialRecord::new(r.completed, r.total_rounds, r.metrics)
    }
}

/// Multi-source **Compete(S)** (Theorem 4.1) with `sources` seed-random
/// sources holding distinct messages. Sources are placed on *distinct*
/// nodes each trial — sampling with replacement would silently merge two
/// messages onto one node, measuring `Compete(S')` with `|S'| < |S|`.
#[derive(Debug, Clone)]
pub struct CompeteScenario {
    /// Algorithm constants.
    pub params: CompeteParams,
    /// Number of sources `|S| ≥ 1` (placed on distinct uniform nodes per
    /// trial).
    pub sources: usize,
    /// Registry name (e.g. `"compete(4)"`, `"compete(4){mu=0.2}"`).
    pub label: String,
}

impl CompeteScenario {
    /// Default-parameter Compete with `sources` sources.
    ///
    /// # Panics
    ///
    /// Panics if `sources == 0` — a sourceless Compete is meaningless and
    /// used to be silently clamped to 1.
    pub fn new(sources: usize) -> CompeteScenario {
        CompeteScenario::with_params(
            sources,
            CompeteParams::default(),
            format!("compete({sources})"),
        )
    }

    /// An explicit parameter set under an explicit registry name.
    ///
    /// # Panics
    ///
    /// Panics if `sources == 0`.
    pub fn with_params(
        sources: usize,
        params: CompeteParams,
        label: impl Into<String>,
    ) -> CompeteScenario {
        assert!(sources >= 1, "compete needs at least one source (got 0)");
        CompeteScenario { params, sources, label: label.into() }
    }
}

impl Runnable for CompeteScenario {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_trial(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
    ) -> TrialRecord {
        assert!(
            self.sources <= g.n(),
            "compete({}) needs {} distinct sources but the graph has only {} nodes",
            self.sources,
            self.sources,
            g.n()
        );
        // Source placement is part of the trial's randomness: distinct
        // nodes, drawn from the trial seed on a separate stream.
        let mut srng = rng::stream_rng(seed, 0x50C);
        let sources: Vec<(NodeId, u64)> = rng::sample_distinct(&mut srng, self.sources, g.n())
            .into_iter()
            .enumerate()
            .map(|(k, v)| (v as NodeId, (k + 1) as u64))
            .collect();
        let r = compete_with_model(g, net, &sources, &self.params, model, seed)
            .expect("campaign graphs are connected with in-range sources");
        TrialRecord::new(r.completed, r.total_rounds, r.metrics)
    }
}

/// Leader election (Algorithm 6, Theorem 5.2): candidate self-selection,
/// random IDs, Compete on the IDs. A trial completes when Compete finishes
/// and exactly one node holds the winning ID.
#[derive(Debug, Clone)]
pub struct LeaderElectionScenario {
    /// Algorithm constants.
    pub params: CompeteParams,
    /// Registry name (e.g. `"leader_election"`,
    /// `"leader_election{curtail=5}"`).
    pub label: String,
}

impl LeaderElectionScenario {
    /// Default-parameter leader election.
    pub fn new() -> LeaderElectionScenario {
        LeaderElectionScenario::with_params(CompeteParams::default(), "leader_election")
    }

    /// An explicit parameter set under an explicit registry name.
    pub fn with_params(params: CompeteParams, label: impl Into<String>) -> LeaderElectionScenario {
        LeaderElectionScenario { params, label: label.into() }
    }
}

impl Default for LeaderElectionScenario {
    fn default() -> Self {
        LeaderElectionScenario::new()
    }
}

impl Runnable for LeaderElectionScenario {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_trial(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
    ) -> TrialRecord {
        let r = leader_election_with_model(g, net, &self.params, model, seed)
            .expect("campaign graphs are connected");
        TrialRecord::new(
            r.compete.completed && r.unique_winner,
            r.compete.total_rounds,
            r.compete.metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    fn net_of(g: &Graph) -> NetParams {
        NetParams::of_graph(g)
    }

    #[test]
    fn broadcast_scenario_completes_on_grid() {
        let g = generators::grid(8, 8);
        let s = BroadcastScenario::czumaj_davies();
        assert_eq!(s.name(), "broadcast");
        let r = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 3);
        assert!(r.completed);
        assert!(r.rounds > 0);
        assert!(r.metrics.deliveries > 0);
    }

    #[test]
    fn leader_election_scenario_elects() {
        let g = generators::grid(8, 8);
        let s = LeaderElectionScenario::new();
        assert_eq!(s.name(), "leader_election");
        let r = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 5);
        assert!(r.completed);
    }

    #[test]
    fn compete_scenario_is_seed_deterministic() {
        let g = generators::grid(6, 6);
        let s = CompeteScenario::new(4);
        assert_eq!(s.name(), "compete(4)");
        let a = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 11);
        let b = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 11);
        assert_eq!(a, b, "same seed, same trial");
        assert!(a.completed);
    }

    #[test]
    fn compete_scenario_places_all_sources_distinctly() {
        // Regression: with-replacement sampling would collide two of K
        // messages onto one node with probability ≈ 1 - exp(-K²/2n); on a
        // 9-node graph with 9 sources it is certain to, across seeds. With
        // distinct placement, Compete(S) sees exactly |S| = n sources, so
        // the run completes with every node a source.
        let g = generators::grid(3, 3);
        let s = CompeteScenario::new(9);
        for seed in 0..16 {
            let r = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, seed);
            assert!(r.completed, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn compete_scenario_rejects_zero_sources() {
        // Regression: K = 0 used to be silently clamped to 1.
        CompeteScenario::new(0);
    }

    #[test]
    #[should_panic(expected = "only 9 nodes")]
    fn compete_scenario_rejects_more_sources_than_nodes() {
        let g = generators::grid(3, 3);
        let s = CompeteScenario::new(10);
        s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 1);
    }

    #[test]
    fn broadcast_scenario_degrades_gracefully_under_faults() {
        use rn_sim::FaultPlan;
        // The paper's broadcast run under the uniform fault seam: with every
        // non-source node jamming at probability 1, nothing can spread — and
        // the trial must report that honestly rather than complete falsely.
        let g = generators::grid(4, 4);
        let s = BroadcastScenario::czumaj_davies();
        let r = s.run_trial_under_faults(
            &g,
            net_of(&g),
            CollisionModel::NoCollisionDetection,
            3,
            &FaultPlan::jam(16, 1.0),
        );
        assert!(!r.completed, "no false completion under total jamming");
        // A mild fault plan still runs deterministically.
        let plan = FaultPlan::jam(2, 0.3);
        let a = s.run_trial_under_faults(
            &g,
            net_of(&g),
            CollisionModel::NoCollisionDetection,
            3,
            &plan,
        );
        let b = s.run_trial_under_faults(
            &g,
            net_of(&g),
            CollisionModel::NoCollisionDetection,
            3,
            &plan,
        );
        assert_eq!(a, b);
    }
}
