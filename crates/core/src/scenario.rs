//! [`Runnable`] scenarios for the paper's algorithms — the plug the
//! campaign registry uses to run Compete, broadcasting and leader election
//! uniformly against any topology and collision model.

use crate::api::{compete_with_model, leader_election_with_model};
use crate::params::CompeteParams;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rn_graph::{Graph, NodeId};
use rn_sim::{rng, CollisionModel, NetParams, Runnable, TrialRecord};

/// Broadcasting (Theorem 5.1): `Compete({node 0})` with the given parameter
/// set. `label` is the registry name, so the same struct serves the default
/// Czumaj–Davies configuration and ablation variants (e.g. Haeupler–Wajc
/// curtailment).
#[derive(Debug, Clone)]
pub struct BroadcastScenario {
    /// Algorithm constants for this variant.
    pub params: CompeteParams,
    /// Registry name (e.g. `"broadcast"`, `"broadcast_hw"`).
    pub label: String,
}

impl BroadcastScenario {
    /// The paper's default configuration, named `broadcast`.
    pub fn czumaj_davies() -> BroadcastScenario {
        BroadcastScenario { params: CompeteParams::default(), label: "broadcast".into() }
    }

    /// The Haeupler–Wajc curtailment ablation, named `broadcast_hw`.
    pub fn haeupler_wajc() -> BroadcastScenario {
        BroadcastScenario { params: CompeteParams::haeupler_wajc(), label: "broadcast_hw".into() }
    }
}

impl Runnable for BroadcastScenario {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_trial(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
    ) -> TrialRecord {
        let r = compete_with_model(g, net, &[(0, 1)], &self.params, model, seed)
            .expect("campaign graphs are connected with an in-range source");
        TrialRecord::new(r.completed, r.total_rounds, r.metrics)
    }
}

/// Multi-source **Compete(S)** (Theorem 4.1) with `sources` seed-random
/// sources holding distinct messages.
#[derive(Debug, Clone)]
pub struct CompeteScenario {
    /// Algorithm constants.
    pub params: CompeteParams,
    /// Number of sources `|S|` (placed uniformly at random per trial).
    pub sources: usize,
}

impl CompeteScenario {
    /// Default-parameter Compete with `sources` sources.
    pub fn new(sources: usize) -> CompeteScenario {
        CompeteScenario { params: CompeteParams::default(), sources: sources.max(1) }
    }
}

impl Runnable for CompeteScenario {
    fn name(&self) -> String {
        format!("compete({})", self.sources)
    }

    fn run_trial(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
    ) -> TrialRecord {
        // Source placement is part of the trial's randomness: derived from
        // the trial seed on a separate stream.
        let mut srng = SmallRng::seed_from_u64(rng::derive(seed, 0x50C));
        let sources: Vec<(NodeId, u64)> = (0..self.sources)
            .map(|k| (srng.gen_range(0..g.n()) as NodeId, (k + 1) as u64))
            .collect();
        let r = compete_with_model(g, net, &sources, &self.params, model, seed)
            .expect("campaign graphs are connected with in-range sources");
        TrialRecord::new(r.completed, r.total_rounds, r.metrics)
    }
}

/// Leader election (Algorithm 6, Theorem 5.2): candidate self-selection,
/// random IDs, Compete on the IDs. A trial completes when Compete finishes
/// and exactly one node holds the winning ID.
#[derive(Debug, Clone)]
pub struct LeaderElectionScenario {
    /// Algorithm constants.
    pub params: CompeteParams,
}

impl LeaderElectionScenario {
    /// Default-parameter leader election.
    pub fn new() -> LeaderElectionScenario {
        LeaderElectionScenario { params: CompeteParams::default() }
    }
}

impl Default for LeaderElectionScenario {
    fn default() -> Self {
        LeaderElectionScenario::new()
    }
}

impl Runnable for LeaderElectionScenario {
    fn name(&self) -> String {
        "leader_election".into()
    }

    fn run_trial(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
    ) -> TrialRecord {
        let r = leader_election_with_model(g, net, &self.params, model, seed)
            .expect("campaign graphs are connected");
        TrialRecord::new(
            r.compete.completed && r.unique_winner,
            r.compete.total_rounds,
            r.compete.metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    fn net_of(g: &Graph) -> NetParams {
        NetParams::of_graph(g)
    }

    #[test]
    fn broadcast_scenario_completes_on_grid() {
        let g = generators::grid(8, 8);
        let s = BroadcastScenario::czumaj_davies();
        assert_eq!(s.name(), "broadcast");
        let r = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 3);
        assert!(r.completed);
        assert!(r.rounds > 0);
        assert!(r.metrics.deliveries > 0);
    }

    #[test]
    fn leader_election_scenario_elects() {
        let g = generators::grid(8, 8);
        let s = LeaderElectionScenario::new();
        assert_eq!(s.name(), "leader_election");
        let r = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 5);
        assert!(r.completed);
    }

    #[test]
    fn compete_scenario_is_seed_deterministic() {
        let g = generators::grid(6, 6);
        let s = CompeteScenario::new(4);
        assert_eq!(s.name(), "compete(4)");
        let a = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 11);
        let b = s.run_trial(&g, net_of(&g), CollisionModel::NoCollisionDetection, 11);
        assert_eq!(a, b, "same seed, same trial");
        assert!(a.completed);
    }
}
