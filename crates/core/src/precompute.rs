use crate::params::{CompeteParams, PrecomputeMode};
use rn_cluster::{Partition, PartitionScratch};
use rn_graph::Graph;
use rn_schedule::{SlotPolicy, TreeSchedule, TreeScheduleScratch};
use rn_sim::{rng, NetParams};

/// One fine clustering ready for Intra-Cluster Propagation: its partition,
/// its tree schedule, and the curtailment geometry derived from the paper's
/// parameters.
#[derive(Debug)]
pub struct FineClustering {
    /// The `j` such that `β = 2^-j` (0 for background clusterings, which use
    /// `β = D^-0.1` directly).
    pub j: u32,
    /// The clustering rate β.
    pub beta: f64,
    /// The Partition(β) result.
    pub partition: Partition,
    /// The per-cluster BFS-tree schedule.
    pub schedule: TreeSchedule,
    /// ICP curtailment radius ℓ for this clustering.
    pub radius: u32,
    /// Rounds per down- or up-cast pass: `(min(ℓ, depth)+1)·W`.
    pub pass_len: u64,
    /// Rounds per full ICP (down + up + down).
    pub icp_len: u64,
}

impl FineClustering {
    fn new(j: u32, beta: f64, partition: Partition, schedule: TreeSchedule, radius: u32) -> Self {
        let pass_len = schedule.pass_len(radius);
        FineClustering { j, beta, partition, schedule, radius, pass_len, icp_len: 3 * pass_len }
    }

    /// Refreshes the curtailment geometry after an in-place partition /
    /// schedule rebuild.
    fn reset_meta(&mut self, j: u32, beta: f64, radius: u32) {
        self.j = j;
        self.beta = beta;
        self.radius = radius;
        self.pass_len = self.schedule.pass_len(radius);
        self.icp_len = 3 * self.pass_len;
    }
}

/// Reusable workspace for [`Precomputed::rebuild`]: the cluster-race and
/// tree-schedule scratch spaces shared by every partition/schedule pair the
/// precompute constructs.
#[derive(Debug, Default)]
pub struct PrecomputeScratch {
    partition: PartitionScratch,
    schedule: TreeScheduleScratch,
}

/// Everything Algorithm 1 steps 1–6 and Algorithm 2 steps 1–2 produce,
/// plus the charged round cost of producing it distributedly.
#[derive(Debug)]
pub struct Precomputed {
    /// Network parameters the computation was done for.
    pub net: NetParams,
    /// The coarse clustering (`β = D^-0.5`), whose only role is to scope the
    /// shared randomness of the fine-clustering sequences.
    pub coarse: Partition,
    /// The coarse schedule (only charged, never replayed; kept so pooled
    /// rebuilds reuse its buffers).
    pub coarse_sched: TreeSchedule,
    /// Coarse cluster index per node (cached).
    pub coarse_idx: Vec<u32>,
    /// The `j` values in use (so `fines[ji * copies + t]` has `j = js[ji]`).
    pub js: Vec<u32>,
    /// Copies per `j`.
    pub copies: u32,
    /// Main-process fine clusterings, computed *within* coarse clusters.
    pub fines: Vec<FineClustering>,
    /// Background-process clusterings (global, `β = D^-0.1`), round-robin.
    pub bg: Vec<FineClustering>,
    /// Global ICP slot length of the main process: every slot lasts this
    /// long so heterogeneous per-coarse choices stay globally aligned
    /// (slower β's finish early and idle).
    pub main_slot_len: u64,
    /// Global ICP slot length of the background process.
    pub bg_slot_len: u64,
    /// Sequence length (`D^0.99` scaled).
    pub seq_len: u64,
    /// Rounds charged for the whole precomputation per the paper's formulas
    /// (0 under [`PrecomputeMode::Ignored`]).
    pub charged_rounds: u64,
}

impl Precomputed {
    /// Runs the oracle precomputation for `g` under `params`, seeding all
    /// randomness from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected (cluster BFS would not cover it).
    pub fn build(g: &Graph, net: NetParams, params: &CompeteParams, seed: u64) -> Precomputed {
        let mut pre = Precomputed::shell();
        pre.rebuild(g, net, params, seed, &mut PrecomputeScratch::default());
        pre
    }

    /// A trivial (one-node) precompute whose buffers [`Precomputed::rebuild`]
    /// replaces. Keeps fresh and pooled construction on one code path.
    pub(crate) fn shell() -> Precomputed {
        let g1 = Graph::from_edges(1, &[]).expect("one-node graph");
        let mut r = rng::rng_from_seed(0);
        let coarse = Partition::compute(&g1, 1.0, &mut r);
        let coarse_sched = TreeSchedule::build(&g1, &coarse, SlotPolicy::Fixed(1));
        Precomputed {
            net: NetParams::new(1, 1),
            coarse,
            coarse_sched,
            coarse_idx: Vec::new(),
            js: Vec::new(),
            copies: 0,
            fines: Vec::new(),
            bg: Vec::new(),
            main_slot_len: 1,
            bg_slot_len: 1,
            seq_len: 1,
            charged_rounds: 0,
        }
    }

    /// In-place [`Precomputed::build`]: recomputes every clustering and
    /// schedule for a fresh `seed` (the precompute is seed-dependent, so
    /// pooled trial loops must rebuild it each trial) while reusing all
    /// existing buffers. After the first rebuild on a given `(graph, params)`
    /// pair, subsequent rebuilds perform no heap allocation.
    pub fn rebuild(
        &mut self,
        g: &Graph,
        net: NetParams,
        params: &CompeteParams,
        seed: u64,
        scratch: &mut PrecomputeScratch,
    ) {
        let log_n = net.log2_n() as u64;
        let mut charged: u64 = 0;
        self.net = net;

        // Step 1: coarse clustering with β = D^-0.5.
        let beta_c = params.coarse_beta(&net);
        let mut rng_c = rng::stream_rng(seed, 1);
        self.coarse.recompute(g, beta_c, &mut rng_c, &mut scratch.partition);
        charged += ((log_n * log_n * log_n) as f64 / beta_c).ceil() as u64;

        // Step 2: coarse schedule (needed for charging the sequence
        // transmission; the propagation phase itself does not replay it).
        self.coarse_sched.rebuild(g, &self.coarse, SlotPolicy::Auto, &mut scratch.schedule);
        charged += self.coarse_sched.charged_build_rounds(&net);

        self.coarse_idx.clear();
        self.coarse_idx.extend(g.nodes().map(|v| self.coarse.cluster_index(v)));

        // Steps 3–4: fine clusterings within coarse clusters, for every j and
        // copy, plus their schedules.
        params.j_values_into(&net, &mut self.js);
        let copies = params.fine_copies(&net);
        self.copies = copies;
        let want = self.js.len() * copies as usize;
        self.fines.truncate(want);
        for i in 0..want {
            let (ji, t) = (i / copies as usize, (i % copies as usize) as u32);
            let j = self.js[ji];
            let beta = (2.0f64).powi(-(j as i32));
            let radius = params.curtail_radius(&net, j);
            let stream = 1000 + (ji as u64) * 512 + t as u64;
            let mut r = rng::stream_rng(seed, stream);
            if let Some(f) = self.fines.get_mut(i) {
                f.partition.recompute_within(
                    g,
                    beta,
                    &self.coarse_idx,
                    &mut r,
                    &mut scratch.partition,
                );
                f.schedule.rebuild(g, &f.partition, SlotPolicy::Auto, &mut scratch.schedule);
                f.reset_meta(j, beta, radius);
            } else {
                let part = Partition::compute_within(g, beta, &self.coarse_idx, &mut r);
                let sched = TreeSchedule::build(g, &part, SlotPolicy::Auto);
                self.fines.push(FineClustering::new(j, beta, part, sched, radius));
            }
            charged += ((log_n * log_n * log_n) as f64 / beta).ceil() as u64;
            charged += self.fines[i].schedule.charged_build_rounds(&net);
        }

        // Steps 5–6: sequences are generated lazily from per-coarse-cluster
        // seed streams (local computation, free); their transmission through
        // the coarse schedule is charged per Lemma 2.3's k-message bound.
        self.seq_len = params.seq_len(&net);
        charged += self.coarse_sched.pass_len(self.coarse_sched.max_depth());
        charged += self.seq_len * log_n + log_n * log_n * log_n;

        // Background process steps 1–2: global clusterings at β = D^-0.1.
        let beta_bg = params.bg_beta(&net);
        let bg_radius = params.bg_curtail_radius(&net);
        let bg_count = copies.max(2) as usize;
        self.bg.truncate(bg_count);
        for t in 0..bg_count {
            let mut r = rng::stream_rng(seed, 9000 + t as u64);
            if let Some(f) = self.bg.get_mut(t) {
                f.partition.recompute(g, beta_bg, &mut r, &mut scratch.partition);
                f.schedule.rebuild(g, &f.partition, SlotPolicy::Auto, &mut scratch.schedule);
                f.reset_meta(0, beta_bg, bg_radius);
            } else {
                let part = Partition::compute(g, beta_bg, &mut r);
                let sched = TreeSchedule::build(g, &part, SlotPolicy::Auto);
                self.bg.push(FineClustering::new(0, beta_bg, part, sched, bg_radius));
            }
            charged += ((log_n * log_n * log_n) as f64 / beta_bg).ceil() as u64;
            charged += self.bg[t].schedule.charged_build_rounds(&net);
        }

        self.main_slot_len = self.fines.iter().map(|f| f.icp_len).max().unwrap_or(1).max(1);
        self.bg_slot_len = self.bg.iter().map(|f| f.icp_len).max().unwrap_or(1).max(1);

        self.charged_rounds = match params.precompute {
            PrecomputeMode::Charged => charged,
            PrecomputeMode::Ignored => 0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    fn build(g: &Graph) -> Precomputed {
        let net = NetParams::of_graph(g);
        Precomputed::build(g, net, &CompeteParams::default(), 42)
    }

    #[test]
    fn fine_clusters_stay_within_coarse_clusters() {
        let g = generators::grid(14, 14);
        let pre = build(&g);
        for fine in &pre.fines {
            for idx in 0..fine.partition.num_clusters() as u32 {
                let members = fine.partition.members(idx);
                let cc = pre.coarse_idx[members[0] as usize];
                assert!(
                    members.iter().all(|&m| pre.coarse_idx[m as usize] == cc),
                    "fine cluster spans coarse clusters"
                );
            }
        }
    }

    #[test]
    fn counts_follow_params() {
        let g = generators::grid(14, 14);
        let net = NetParams::of_graph(&g);
        let params = CompeteParams::default();
        let pre = build(&g);
        assert_eq!(pre.fines.len(), pre.js.len() * pre.copies as usize);
        assert_eq!(pre.js, params.j_values(&net));
        assert!(pre.bg.len() >= 2);
    }

    #[test]
    fn slot_lengths_cover_every_icp() {
        let g = generators::grid(12, 12);
        let pre = build(&g);
        for f in &pre.fines {
            assert!(f.icp_len <= pre.main_slot_len);
            assert_eq!(f.icp_len, 3 * f.pass_len);
        }
        for f in &pre.bg {
            assert!(f.icp_len <= pre.bg_slot_len);
        }
    }

    #[test]
    fn charged_cost_is_positive_and_suppressible() {
        let g = generators::grid(10, 10);
        let net = NetParams::of_graph(&g);
        let pre = Precomputed::build(&g, net, &CompeteParams::default(), 1);
        assert!(pre.charged_rounds > 0);
        let free = Precomputed::build(
            &g,
            net,
            &CompeteParams { precompute: PrecomputeMode::Ignored, ..CompeteParams::default() },
            1,
        );
        assert_eq!(free.charged_rounds, 0);
    }

    #[test]
    fn rebuild_matches_fresh_build_exactly() {
        let g = generators::grid(10, 10);
        let net = NetParams::of_graph(&g);
        let params = CompeteParams::default();
        // Warm the pooled value on a different graph, then rebuild across
        // seeds: every observable must equal the fresh construction.
        let warm = generators::path(20);
        let mut pooled = Precomputed::build(&warm, NetParams::of_graph(&warm), &params, 5);
        let mut scratch = PrecomputeScratch::default();
        for seed in [7u64, 8, 9] {
            pooled.rebuild(&g, net, &params, seed, &mut scratch);
            let fresh = Precomputed::build(&g, net, &params, seed);
            assert_eq!(pooled.charged_rounds, fresh.charged_rounds, "seed {seed}");
            assert_eq!(pooled.js, fresh.js);
            assert_eq!(pooled.copies, fresh.copies);
            assert_eq!(pooled.coarse_idx, fresh.coarse_idx);
            assert_eq!(pooled.main_slot_len, fresh.main_slot_len);
            assert_eq!(pooled.bg_slot_len, fresh.bg_slot_len);
            assert_eq!(pooled.seq_len, fresh.seq_len);
            assert_eq!(pooled.fines.len(), fresh.fines.len());
            for (fp, ff) in
                pooled.fines.iter().zip(&fresh.fines).chain(pooled.bg.iter().zip(&fresh.bg))
            {
                assert_eq!(fp.j, ff.j);
                assert_eq!(fp.radius, ff.radius);
                assert_eq!(fp.pass_len, ff.pass_len);
                assert_eq!(fp.schedule.window(), ff.schedule.window());
                for v in g.nodes() {
                    assert_eq!(fp.partition.center_of(v), ff.partition.center_of(v));
                    assert_eq!(fp.schedule.down_slot(v), ff.schedule.down_slot(v));
                    assert_eq!(fp.schedule.up_slot(v), ff.schedule.up_slot(v));
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::grid(10, 10);
        let net = NetParams::of_graph(&g);
        let a = Precomputed::build(&g, net, &CompeteParams::default(), 7);
        let b = Precomputed::build(&g, net, &CompeteParams::default(), 7);
        assert_eq!(a.charged_rounds, b.charged_rounds);
        for (fa, fb) in a.fines.iter().zip(&b.fines) {
            for v in g.nodes() {
                assert_eq!(fa.partition.center_of(v), fb.partition.center_of(v));
            }
        }
    }

    #[test]
    fn background_clusterings_are_global_and_coarser_than_fines() {
        // β_bg = 0.25·D^-0.1 is smaller than the finest β = 2^-j_min = 0.5,
        // so background clusters should be no more fragmented than the
        // finest main clusterings (and they ignore coarse boundaries).
        let g = generators::grid(20, 20);
        let pre = build(&g);
        let bg_clusters = pre.bg[0].partition.num_clusters();
        let finest =
            pre.fines.iter().max_by(|a, b| a.beta.total_cmp(&b.beta)).expect("fines nonempty");
        assert!(finest.beta > pre.bg[0].beta, "finest β above background β");
        assert!(
            bg_clusters <= finest.partition.num_clusters(),
            "bg {bg_clusters} should be no more fragmented than finest {}",
            finest.partition.num_clusters()
        );
    }
}
