use crate::params::CompeteParams;
use crate::precompute::{PrecomputeScratch, Precomputed};
use crate::protocol::{CompeteMsg, CompeteProtocol, CompeteState};
use rand::Rng;
use rn_graph::{Graph, NodeId};
use rn_sim::{
    rng, CollisionModel, FaultSchedule, Metrics, NetParams, RunOutcome, SimScratch, Simulator,
    TxBuf,
};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from the top-level Compete entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompeteError {
    /// The graph is not connected; global propagation is impossible.
    Disconnected,
    /// No sources were provided.
    NoSources,
    /// A source node id is out of range.
    SourceOutOfRange {
        /// The offending node id.
        node: NodeId,
    },
}

impl fmt::Display for CompeteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompeteError::Disconnected => write!(f, "graph is not connected"),
            CompeteError::NoSources => write!(f, "source set is empty"),
            CompeteError::SourceOutOfRange { node } => {
                write!(f, "source node {node} out of range")
            }
        }
    }
}

impl Error for CompeteError {}

/// Outcome of one Compete (or broadcast / leader election) execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompeteReport {
    /// Whether every node learned the highest source message within budget.
    pub completed: bool,
    /// Rounds of the packet-level propagation phase actually executed.
    pub propagation_rounds: u64,
    /// Rounds charged for precomputation (see `PrecomputeMode`).
    pub charged_precompute_rounds: u64,
    /// `propagation_rounds + charged_precompute_rounds`.
    pub total_rounds: u64,
    /// Channel statistics of the propagation phase.
    pub metrics: Metrics,
    /// The highest source message (what had to be spread).
    pub target: u64,
    /// Number of nodes knowing the target at the end.
    pub nodes_knowing: usize,
    /// The master seed used (for exact reproduction).
    pub seed: u64,
}

/// Outcome of a leader-election execution (Algorithm 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaderElectionReport {
    /// The underlying Compete execution.
    pub compete: CompeteReport,
    /// Number of candidates that self-selected.
    pub num_candidates: usize,
    /// The elected leader (node whose ID won), if election completed cleanly.
    pub leader: Option<NodeId>,
    /// Whether exactly one node holds the winning ID (whp true; collisions
    /// in the ID space are detected and reported here).
    pub unique_winner: bool,
}

fn validate(g: &Graph, sources: &[(NodeId, u64)]) -> Result<(), CompeteError> {
    if sources.is_empty() {
        return Err(CompeteError::NoSources);
    }
    for &(s, _) in sources {
        if s as usize >= g.n() {
            return Err(CompeteError::SourceOutOfRange { node: s });
        }
    }
    if !g.is_connected() {
        return Err(CompeteError::Disconnected);
    }
    Ok(())
}

/// The validated execution core shared by every public entry point: callers
/// must have run [`validate`] (or constructed sources that satisfy it), so
/// the `O(n + m)` connectivity BFS runs exactly once per call chain.
fn run_compete(
    g: &Graph,
    net: NetParams,
    sources: &[(NodeId, u64)],
    params: &CompeteParams,
    model: CollisionModel,
    seed: u64,
    faults: Option<&FaultSchedule>,
) -> CompeteReport {
    let pre = Precomputed::build(g, net, params, rng::derive(seed, 0x9DE));
    let mut proto = CompeteProtocol::new(&pre, *params, sources, rng::derive(seed, 0x9D0));
    let mut sim = Simulator::with_faults(g, model, seed, faults.cloned());
    let budget = params.max_rounds(&net);
    let stats = sim.run(&mut proto, budget);
    debug_assert!(matches!(stats.outcome, RunOutcome::ProtocolDone | RunOutcome::BudgetExhausted));
    let completed = proto.all_know_target();
    CompeteReport {
        completed,
        propagation_rounds: stats.rounds,
        charged_precompute_rounds: pre.charged_rounds,
        total_rounds: stats.rounds + pre.charged_rounds,
        metrics: stats.metrics,
        target: proto.target(),
        nodes_knowing: proto.num_knowing(),
        seed,
    }
}

/// Reusable cross-trial state for the pooled Compete entry points
/// ([`compete_pooled`], [`leader_election_pooled`]): the precompute and its
/// rebuild scratch, the protocol state, the transmission buffer, the
/// leader-election candidate list, and a connectivity-check memo. Keep one
/// pool per worker thread; after the first trial on a given graph shape,
/// further trials allocate nothing on the heap.
#[derive(Debug)]
pub struct CompetePool {
    pre: Option<Precomputed>,
    pre_scratch: PrecomputeScratch,
    state: CompeteState,
    tx: TxBuf<CompeteMsg>,
    candidates: Vec<(NodeId, u64)>,
    /// Source-placement scratch for the compete scenarios: the raw Floyd
    /// sample, the placed node ids, and the `(node, value)` list handed to
    /// the protocol — reused so steady-state placement is allocation-free.
    pub(crate) place_idx: Vec<usize>,
    pub(crate) source_ids: Vec<NodeId>,
    pub(crate) sources: Vec<(NodeId, u64)>,
    /// `(address, n, m)` of the last graph whose connectivity check passed;
    /// a matching key skips the allocating BFS. Callers must keep graphs at
    /// stable addresses for the pool's lifetime (campaign executors cache
    /// them in `OnceLock` cells, which guarantees this).
    connected: Option<(usize, usize, usize)>,
}

impl Default for CompetePool {
    fn default() -> CompetePool {
        CompetePool {
            pre: None,
            pre_scratch: PrecomputeScratch::default(),
            state: CompeteState::default(),
            tx: TxBuf::new(),
            candidates: Vec::new(),
            place_idx: Vec::new(),
            source_ids: Vec::new(),
            sources: Vec::new(),
            connected: None,
        }
    }
}

impl CompetePool {
    /// An empty pool; the first trial populates it.
    pub fn new() -> CompetePool {
        CompetePool::default()
    }

    fn check_connected(&mut self, g: &Graph) -> Result<(), CompeteError> {
        let key = (g as *const Graph as usize, g.n(), g.m());
        if self.connected != Some(key) {
            if !g.is_connected() {
                return Err(CompeteError::Disconnected);
            }
            self.connected = Some(key);
        }
        Ok(())
    }
}

/// [`run_compete`] on pooled state: identical seed streams and protocol code
/// path (constructors are reset-on-shell), so reports are byte-identical to
/// the fresh entry points, while buffers come from `engine`/`pool`.
#[allow(clippy::too_many_arguments)]
fn run_compete_pooled(
    g: &Graph,
    net: NetParams,
    sources: &[(NodeId, u64)],
    params: &CompeteParams,
    model: CollisionModel,
    seed: u64,
    faults: Option<&FaultSchedule>,
    engine: &mut SimScratch,
    pool: &mut CompetePool,
) -> CompeteReport {
    if pool.pre.is_none() {
        pool.pre = Some(Precomputed::shell());
    }
    let pre = pool.pre.as_mut().expect("slot was just filled");
    pre.rebuild(g, net, params, rng::derive(seed, 0x9DE), &mut pool.pre_scratch);
    let pre = pool.pre.as_ref().expect("filled above");
    let mut proto =
        CompeteProtocol::reuse(pre, *params, sources, rng::derive(seed, 0x9D0), &mut pool.state);
    let mut sim = Simulator::reuse(engine, g, model, seed, faults.cloned());
    let budget = params.max_rounds(&net);
    // Worst case: every node transmits in one round. Reserving it up front
    // keeps the buffer's capacity from chasing a seed-dependent per-round
    // maximum (which would allocate mid-trial on the unluckiest trial).
    // Clear first — the buffer still holds the previous trial's final round,
    // and `reserve` counts beyond the current length.
    pool.tx.clear();
    pool.tx.reserve(g.n());
    let stats = sim.run_with_buf(&mut proto, &mut pool.tx, budget);
    debug_assert!(matches!(stats.outcome, RunOutcome::ProtocolDone | RunOutcome::BudgetExhausted));
    let completed = proto.all_know_target();
    CompeteReport {
        completed,
        propagation_rounds: stats.rounds,
        charged_precompute_rounds: pre.charged_rounds,
        total_rounds: stats.rounds + pre.charged_rounds,
        metrics: stats.metrics,
        target: proto.target(),
        nodes_knowing: proto.num_knowing(),
        seed,
    }
}

/// As [`compete_scheduled`], reusing engine scratch and a [`CompetePool`]
/// across calls. Reports are byte-identical to the fresh path for every
/// input; steady-state trials (after the first on a given graph shape)
/// perform no heap allocation, except cloning `faults` when a schedule is
/// supplied.
///
/// # Errors
///
/// [`CompeteError`] on empty/invalid sources or a disconnected graph.
#[allow(clippy::too_many_arguments)]
pub fn compete_pooled(
    g: &Graph,
    net: NetParams,
    sources: &[(NodeId, u64)],
    params: &CompeteParams,
    model: CollisionModel,
    seed: u64,
    faults: Option<&FaultSchedule>,
    engine: &mut SimScratch,
    pool: &mut CompetePool,
) -> Result<CompeteReport, CompeteError> {
    if sources.is_empty() {
        return Err(CompeteError::NoSources);
    }
    for &(s, _) in sources {
        if s as usize >= g.n() {
            return Err(CompeteError::SourceOutOfRange { node: s });
        }
    }
    pool.check_connected(g)?;
    Ok(run_compete_pooled(g, net, sources, params, model, seed, faults, engine, pool))
}

/// As [`leader_election_scheduled`] on pooled state (see [`compete_pooled`]
/// for the reuse contract): byte-identical reports, allocation-free steady
/// state apart from rare candidate-list high-water growth.
///
/// # Errors
///
/// [`CompeteError::Disconnected`] on a disconnected graph.
#[allow(clippy::too_many_arguments)]
pub fn leader_election_pooled(
    g: &Graph,
    net: NetParams,
    params: &CompeteParams,
    model: CollisionModel,
    seed: u64,
    faults: Option<&FaultSchedule>,
    engine: &mut SimScratch,
    pool: &mut CompetePool,
) -> Result<LeaderElectionReport, CompeteError> {
    pool.check_connected(g)?;
    let n = g.n();
    let p_cand = (2.0 * net.log2_n() as f64 / n as f64).min(1.0);
    // Candidate sampling; the (probability ≤ n^-2) empty draw restarts on
    // the same derived seed stream the fresh path recurses into.
    let mut cur_seed = seed;
    loop {
        let mut crng = rng::stream_rng(cur_seed, 0xCA4D);
        pool.candidates.clear();
        for v in g.nodes() {
            if crng.gen::<f64>() < p_cand {
                let id: u64 = crng.gen::<u64>() & !0xFFFF_FFFFu64 | v as u64;
                pool.candidates.push((v, id));
            }
        }
        if !pool.candidates.is_empty() {
            break;
        }
        cur_seed = rng::derive(cur_seed, 0x9999);
    }
    let candidates = std::mem::take(&mut pool.candidates);
    let report =
        run_compete_pooled(g, net, &candidates, params, model, cur_seed, faults, engine, pool);
    let target = report.target;
    let mut leader = None;
    let mut winners = 0usize;
    for &(v, id) in &candidates {
        if id == target {
            if leader.is_none() {
                leader = Some(v);
            }
            winners += 1;
        }
    }
    let num_candidates = candidates.len();
    pool.candidates = candidates;
    Ok(LeaderElectionReport {
        compete: report,
        num_candidates,
        leader,
        unique_winner: winners == 1,
    })
}

/// Runs **Compete(S)** (Algorithm 1 + 2): spreads the highest source message
/// to every node. Network parameters are derived from the graph with the
/// double-sweep diameter estimate; use [`compete_with_net`] to supply exact
/// values.
///
/// # Errors
///
/// [`CompeteError`] on empty/invalid sources or a disconnected graph.
pub fn compete(
    g: &Graph,
    sources: &[(NodeId, u64)],
    params: &CompeteParams,
    seed: u64,
) -> Result<CompeteReport, CompeteError> {
    validate(g, sources)?;
    let net = NetParams::new(g.n(), g.diameter_double_sweep());
    Ok(run_compete(g, net, sources, params, CollisionModel::NoCollisionDetection, seed, None))
}

/// As [`compete`], with explicit [`NetParams`] (the `n` and `D` the model
/// assumes known to all nodes).
///
/// # Errors
///
/// [`CompeteError`] on empty/invalid sources or a disconnected graph.
pub fn compete_with_net(
    g: &Graph,
    net: NetParams,
    sources: &[(NodeId, u64)],
    params: &CompeteParams,
    seed: u64,
) -> Result<CompeteReport, CompeteError> {
    compete_with_model(g, net, sources, params, CollisionModel::NoCollisionDetection, seed)
}

/// As [`compete_with_net`], with an explicit [`CollisionModel`] — the
/// full-control entry point used by the scenario registry's collision-model
/// axis. The algorithm is designed for (and analyzed in) the no-collision-
/// detection model; running it under [`CollisionModel::CollisionDetection`]
/// is an ablation (collision notifications are ignored, but the channel
/// semantics of delivery are identical).
///
/// # Errors
///
/// [`CompeteError`] on empty/invalid sources or a disconnected graph.
pub fn compete_with_model(
    g: &Graph,
    net: NetParams,
    sources: &[(NodeId, u64)],
    params: &CompeteParams,
    model: CollisionModel,
    seed: u64,
) -> Result<CompeteReport, CompeteError> {
    compete_scheduled(g, net, sources, params, model, seed, None)
}

/// As [`compete_with_model`], additionally running the channel under an
/// explicit fault schedule (`None` = fault-free). This is the entry point
/// the campaign executor's fault axis reaches: the schedule travels by
/// parameter, never through ambient state, so trials are safe to run from
/// any worker thread.
///
/// # Errors
///
/// [`CompeteError`] on empty/invalid sources or a disconnected graph.
pub fn compete_scheduled(
    g: &Graph,
    net: NetParams,
    sources: &[(NodeId, u64)],
    params: &CompeteParams,
    model: CollisionModel,
    seed: u64,
    faults: Option<&FaultSchedule>,
) -> Result<CompeteReport, CompeteError> {
    validate(g, sources)?;
    Ok(run_compete(g, net, sources, params, model, seed, faults))
}

/// Runs **broadcasting** (Theorem 5.1): `Compete({source})`.
///
/// # Errors
///
/// [`CompeteError`] on an invalid source or a disconnected graph.
pub fn broadcast(
    g: &Graph,
    source: NodeId,
    params: &CompeteParams,
    seed: u64,
) -> Result<CompeteReport, CompeteError> {
    compete(g, &[(source, 1)], params, seed)
}

/// Runs **leader election** (Algorithm 6): nodes self-select as candidates
/// with probability `Θ(log n / n)`, draw random IDs, and Compete on the IDs.
///
/// # Errors
///
/// [`CompeteError::Disconnected`] on a disconnected graph.
pub fn leader_election(
    g: &Graph,
    params: &CompeteParams,
    seed: u64,
) -> Result<LeaderElectionReport, CompeteError> {
    if !g.is_connected() {
        return Err(CompeteError::Disconnected);
    }
    let net = NetParams::new(g.n(), g.diameter_double_sweep());
    Ok(run_leader_election(g, net, params, CollisionModel::NoCollisionDetection, seed, None))
}

/// As [`leader_election`], with explicit [`NetParams`].
///
/// # Errors
///
/// [`CompeteError::Disconnected`] on a disconnected graph.
pub fn leader_election_with_net(
    g: &Graph,
    net: NetParams,
    params: &CompeteParams,
    seed: u64,
) -> Result<LeaderElectionReport, CompeteError> {
    leader_election_with_model(g, net, params, CollisionModel::NoCollisionDetection, seed)
}

/// As [`leader_election_with_net`], with an explicit [`CollisionModel`]
/// (see [`compete_with_model`] for the semantics of the ablation).
///
/// # Errors
///
/// [`CompeteError::Disconnected`] on a disconnected graph.
pub fn leader_election_with_model(
    g: &Graph,
    net: NetParams,
    params: &CompeteParams,
    model: CollisionModel,
    seed: u64,
) -> Result<LeaderElectionReport, CompeteError> {
    leader_election_scheduled(g, net, params, model, seed, None)
}

/// As [`leader_election_with_model`], additionally running the channel under
/// an explicit fault schedule (`None` = fault-free); see
/// [`compete_scheduled`].
///
/// # Errors
///
/// [`CompeteError::Disconnected`] on a disconnected graph.
pub fn leader_election_scheduled(
    g: &Graph,
    net: NetParams,
    params: &CompeteParams,
    model: CollisionModel,
    seed: u64,
    faults: Option<&FaultSchedule>,
) -> Result<LeaderElectionReport, CompeteError> {
    if !g.is_connected() {
        return Err(CompeteError::Disconnected);
    }
    Ok(run_leader_election(g, net, params, model, seed, faults))
}

/// Candidate selection + Compete, after connectivity has been checked once.
fn run_leader_election(
    g: &Graph,
    net: NetParams,
    params: &CompeteParams,
    model: CollisionModel,
    seed: u64,
    faults: Option<&FaultSchedule>,
) -> LeaderElectionReport {
    let n = g.n();
    // Step 1: candidates with probability Θ(log n / n); the constant 2 keeps
    // P[no candidate] ≤ n^-2 while |C| = O(log n) whp.
    let p_cand = (2.0 * net.log2_n() as f64 / n as f64).min(1.0);
    let mut crng = rng::stream_rng(seed, 0xCA4D);
    let mut candidates: Vec<(NodeId, u64)> = Vec::new();
    for v in g.nodes() {
        if crng.gen::<f64>() < p_cand {
            // Step 2: random Θ(log n)-bit IDs (node id in the low bits only
            // as a deterministic tiebreaker against measure-zero collisions).
            let id: u64 = crng.gen::<u64>() & !0xFFFF_FFFFu64 | v as u64;
            candidates.push((v, id));
        }
    }
    if candidates.is_empty() {
        // Degenerate (probability ≤ n^-2): retry with the next seed stream,
        // exactly as restarting the algorithm would.
        return run_leader_election(g, net, params, model, rng::derive(seed, 0x9999), faults);
    }
    // Candidates are nonempty and in-range by construction, and connectivity
    // was checked by the caller — run directly, no second validation BFS.
    let report = run_compete(g, net, &candidates, params, model, seed, faults);
    let target = report.target;
    let winners: Vec<NodeId> =
        candidates.iter().filter(|&&(_, id)| id == target).map(|&(v, _)| v).collect();
    LeaderElectionReport {
        compete: report,
        num_candidates: candidates.len(),
        leader: winners.first().copied(),
        unique_winner: winners.len() == 1,
    }
}
