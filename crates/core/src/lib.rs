//! **Compete, broadcasting and leader election via spontaneous
//! transmissions** — the algorithms of Czumaj & Davies, *"Exploiting
//! Spontaneous Transmissions for Broadcasting and Leader Election in Radio
//! Networks"* (PODC 2017).
//!
//! The paper's contribution is an `O(D·log n / log D + polylog n)`-round
//! randomized algorithm for both problems in multi-hop radio networks
//! without collision detection — optimal `O(D)` whenever `n` is polynomial
//! in `D`, and the first leader-election bound matching broadcasting. The
//! engine is a generalized primitive, **Compete(S)**: every source in `S`
//! holds an integer message, and on completion every node knows the highest
//! one (Theorem 4.1). Broadcasting is `Compete({source})` (Theorem 5.1);
//! leader election self-selects `Θ(log n)` candidates with random IDs and
//! Competes on them (Algorithm 6, Theorem 5.2).
//!
//! The algorithm structure implemented here follows the paper exactly:
//!
//! 1. **Precomputation** ([`Precomputed`]): a coarse Partition(`D^-0.5`)
//!    whose clusters scope shared randomness; per coarse cluster, many fine
//!    Partition(`2^-j`) clusterings for `j` in a range scaling with `log D`;
//!    BFS-tree schedules for every clustering; random per-coarse sequences
//!    of fine clusterings; plus the background process's own global
//!    clusterings at `β = D^-0.1`.
//! 2. **Propagation** ([`CompeteProtocol`]): the main process executes one
//!    curtailed Intra-Cluster Propagation (down/up/down, Algorithm 3) per
//!    sequence element, with radius `Θ(log n/(β·log D))` justified by
//!    Theorem 2.2; interleaved step-for-step with the slower but
//!    boundary-free background process (Algorithm 2); both with Algorithm
//!    4's decay sub-process papering over inter-cluster collisions.
//!
//! Every constant is a tunable in [`CompeteParams`]; ablation modes
//! ([`CurtailMode::HaeuplerWajc`], background switches) reproduce the
//! predecessors the paper compares against.
//!
//! # Example
//!
//! ```
//! use rn_core::{broadcast, CompeteParams};
//! use rn_graph::generators;
//!
//! let g = generators::grid(8, 8);
//! let report = broadcast(&g, 0, &CompeteParams::default(), 7)?;
//! assert!(report.completed);
//! assert_eq!(report.nodes_knowing, 64);
//! # Ok::<(), rn_core::CompeteError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod family;
mod params;
mod precompute;
mod protocol;
mod scenario;

pub use api::{
    broadcast, compete, compete_pooled, compete_scheduled, compete_with_model, compete_with_net,
    leader_election, leader_election_pooled, leader_election_scheduled, leader_election_with_model,
    leader_election_with_net, CompeteError, CompetePool, CompeteReport, LeaderElectionReport,
};
pub use family::{
    apply_overrides, families, BroadcastFamily, BroadcastHwFamily, CompeteFamily,
    LeaderElectionFamily, COMPETE_OVERRIDES,
};
pub use params::{CompeteParams, CurtailMode, PrecomputeMode, SequenceScope};
pub use precompute::{FineClustering, PrecomputeScratch, Precomputed};
pub use protocol::{CompeteMsg, CompeteProtocol, CompeteState};
pub use scenario::{BroadcastScenario, CompeteScenario, LeaderElectionScenario, SourcePlacement};
