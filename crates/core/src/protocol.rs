use crate::params::{CompeteParams, SequenceScope};
use crate::precompute::{FineClustering, Precomputed};
use rand::rngs::SmallRng;
use rn_graph::NodeId;
use rn_sim::{rng, Protocol, Round, TxBuf, WordBitset};

/// Per-node knowledge in struct-of-arrays form: membership as one bit per
/// node plus a dense value word, instead of a `Vec<Option<u64>>` — half the
/// memory (8 B + 1 bit vs 16 B per node) and a branch-free value read on
/// the propagation hot paths.
#[derive(Debug)]
struct KnowTable {
    informed: WordBitset,
    val: Vec<u64>,
}

impl KnowTable {
    fn new(n: usize) -> KnowTable {
        KnowTable { informed: WordBitset::new(n), val: vec![0; n] }
    }

    /// Back to all-uninformed for `n` nodes, reusing the backing storage.
    /// Stale values behind cleared bits are unobservable (`get` gates on
    /// the bit).
    fn reset(&mut self, n: usize) {
        self.informed.reset_capacity(n);
        self.informed.clear_all();
        if self.val.len() != n {
            self.val.clear();
            self.val.resize(n, 0);
        }
    }

    fn n(&self) -> usize {
        self.val.len()
    }

    #[inline]
    fn get(&self, v: NodeId) -> Option<u64> {
        self.informed.contains(v as usize).then(|| self.val[v as usize])
    }

    /// Stores `value` for `v`; returns `true` iff `v` was previously
    /// uninformed. Callers own the max-merge policy.
    #[inline]
    fn set(&mut self, v: NodeId, value: u64) -> bool {
        self.val[v as usize] = value;
        self.informed.set(v as usize)
    }
}

/// Messages on the channel during Compete's propagation phase. Every message
/// names the clustering and cluster it belongs to, so receivers can filter
/// (intra-cluster propagation is per-cluster; cross-cluster transfer happens
/// across successive clusterings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompeteMsg {
    /// Main-process ICP schedule transmission (Algorithm 3 over Algorithm 1's
    /// fine clusterings).
    Sched {
        /// Index into the precomputed fine clusterings.
        fine: u32,
        /// Cluster index within that clustering.
        cluster: u32,
        /// The message value being propagated.
        value: u64,
    },
    /// Main-process ICP background decay (Algorithm 4).
    Alg4 {
        /// Index into the precomputed fine clusterings.
        fine: u32,
        /// Cluster index within that clustering.
        cluster: u32,
        /// The message value being propagated.
        value: u64,
    },
    /// Background-process ICP schedule transmission (Algorithm 2).
    BgSched {
        /// Index into the background clusterings.
        bg: u32,
        /// Cluster index within that clustering.
        cluster: u32,
        /// The message value being propagated.
        value: u64,
    },
    /// Background-process ICP decay (Algorithm 4 under Algorithm 2).
    BgAlg4 {
        /// Index into the background clusterings.
        bg: u32,
        /// Cluster index within that clustering.
        cluster: u32,
        /// The message value being propagated.
        value: u64,
    },
}

/// ICP phase geometry: where a within-slot position falls in the
/// down/up/down structure of Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Down1(u64),
    Up(u64),
    Down2(u64),
    Idle,
}

fn icp_phase(pos: u64, pass: u64) -> Phase {
    if pos < pass {
        Phase::Down1(pos)
    } else if pos < 2 * pass {
        Phase::Up(pos - pass)
    } else if pos < 3 * pass {
        Phase::Down2(pos - 2 * pass)
    } else {
        Phase::Idle
    }
}

/// Stamped per-node scratch value (reset implicitly at each slot).
///
/// Callers stamp each slot with a value that is strictly monotone per
/// instance (slot indices derived from the round counter), so instead of a
/// per-node stamp array the scratch keeps one current stamp, a membership
/// bitset, and the list of touched nodes: rolling to a new stamp lazily
/// clears only the nodes actually written in the previous slot. A `get`
/// with any stamp other than the current one reads as unset — exactly the
/// behavior of the old per-node stamp compare under monotone stamps.
#[derive(Debug)]
struct Scratch {
    has: WordBitset,
    val: Vec<u64>,
    touched: Vec<NodeId>,
    cur_stamp: u64,
}

impl Scratch {
    fn new(n: usize) -> Scratch {
        // Real stamps are >= 1 (slot indices offset by one), so starting at
        // 0 means "no slot written yet".
        Scratch { has: WordBitset::new(n), val: vec![0; n], touched: Vec::new(), cur_stamp: 0 }
    }

    /// Back to the all-unset state for `n` nodes without dropping storage.
    /// Relies on the `has ⊆ touched` invariant (every set bit was pushed),
    /// so the sparse clear is exact; stale `val` entries are unobservable
    /// behind cleared bits.
    fn reset(&mut self, n: usize) {
        if self.val.len() != n {
            self.has.reset_capacity(n);
            self.has.clear_all();
            self.val.clear();
            self.val.resize(n, 0);
            self.touched.clear();
        } else {
            for &v in &self.touched {
                self.has.clear(v as usize);
            }
            self.touched.clear();
        }
        self.touched.reserve(n);
        self.cur_stamp = 0;
    }

    #[inline]
    fn roll(&mut self, stamp: u64) {
        if stamp != self.cur_stamp {
            for &v in &self.touched {
                self.has.clear(v as usize);
            }
            self.touched.clear();
            self.cur_stamp = stamp;
        }
    }

    #[inline]
    fn get(&self, v: NodeId, stamp: u64) -> Option<u64> {
        (stamp == self.cur_stamp && self.has.contains(v as usize)).then(|| self.val[v as usize])
    }

    #[inline]
    fn merge_max(&mut self, v: NodeId, stamp: u64, value: u64) {
        self.roll(stamp);
        let vi = v as usize;
        if self.has.set(vi) {
            self.val[vi] = value;
            self.touched.push(v);
        } else if self.val[vi] < value {
            self.val[vi] = value;
        }
    }
}

/// Per-process Algorithm 4 state: which clusters participate in the current
/// decay block.
#[derive(Debug, Default)]
struct Alg4State {
    /// `(clustering index, cluster index)` pairs participating this block.
    participating: Vec<(u32, u32)>,
    /// Key identifying the block the list was computed for.
    key: Option<(u64, u64)>, // (slot-scope, block)
}

impl Alg4State {
    fn reset(&mut self) {
        self.participating.clear();
        self.key = None;
    }
}

/// All owned, per-trial mutable state of [`CompeteProtocol`], separated from
/// the borrowed [`Precomputed`] so pooled trial loops can keep one
/// `CompeteState` alive across trials: [`CompeteState::reset`] restores the
/// exact post-construction state while reusing every buffer, and
/// [`CompeteProtocol::reuse`] wraps it for one trial. After the first trial
/// on a given `(graph, params)` pair, resets perform no heap allocation.
#[derive(Debug)]
pub struct CompeteState {
    know: KnowTable,
    target: u64,
    num_know_target: usize,

    /// Current main-process slot and the fine clustering chosen by each
    /// coarse cluster for it.
    cur_slot: Option<u64>,
    chosen: Vec<u32>,
    active_fines: Vec<u32>,

    /// Per-fine count of knowing members per cluster, plus the list of
    /// clusters that have any knowledge (grow-only).
    fine_knowing: Vec<Vec<u32>>,
    fine_live: Vec<Vec<u32>>,
    bg_knowing: Vec<Vec<u32>>,
    bg_live: Vec<Vec<u32>>,

    // Main ICP scratch.
    m_down: Scratch,
    m_up: Scratch,
    m_down2: Scratch,
    // Background ICP scratch.
    b_down: Scratch,
    b_up: Scratch,
    b_down2: Scratch,

    alg4_main: Alg4State,
    alg4_bg: Alg4State,

    rng: SmallRng,
    scratch_idx: Vec<usize>,
}

impl Default for CompeteState {
    /// The empty shell pools start from; [`CompeteState::reset`] (run by
    /// every constructor and every pooled trial) grows it to the instance.
    fn default() -> CompeteState {
        CompeteState {
            know: KnowTable::new(0),
            target: 0,
            num_know_target: 0,
            cur_slot: None,
            chosen: Vec::new(),
            active_fines: Vec::new(),
            fine_knowing: Vec::new(),
            fine_live: Vec::new(),
            bg_knowing: Vec::new(),
            bg_live: Vec::new(),
            m_down: Scratch::new(0),
            m_up: Scratch::new(0),
            m_down2: Scratch::new(0),
            b_down: Scratch::new(0),
            b_up: Scratch::new(0),
            b_down2: Scratch::new(0),
            alg4_main: Alg4State::default(),
            alg4_bg: Alg4State::default(),
            rng: rng::rng_from_seed(0),
            scratch_idx: Vec::new(),
        }
    }
}

impl CompeteState {
    /// Fresh state for one trial (equivalent to `reset` on an empty shell —
    /// there is exactly one initialization code path).
    pub fn new(pre: &Precomputed, sources: &[(NodeId, u64)], seed: u64) -> CompeteState {
        let mut st = CompeteState::default();
        st.reset(pre, sources, seed);
        st
    }

    /// Restores the exact post-[`CompeteState::new`] state for a (possibly
    /// different) precompute, seed, and source set, reusing all buffers.
    /// Per-fine tables are re-sized to the new cluster counts with
    /// worst-case (`n`) reservations, so steady-state resets are
    /// allocation-free even though cluster counts vary by seed.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or contains an out-of-range node.
    pub fn reset(&mut self, pre: &Precomputed, sources: &[(NodeId, u64)], seed: u64) {
        assert!(!sources.is_empty(), "Compete needs at least one source");
        let n = pre.net.n();
        self.know.reset(n);
        let target = sources.iter().map(|&(_, v)| v).max().expect("nonempty");
        for &(s, v) in sources {
            assert!((s as usize) < n, "source {s} out of range");
            let merged = self.know.get(s).map_or(v, |old| old.max(v));
            self.know.set(s, merged);
        }
        self.target = target;
        self.num_know_target =
            (0..n as NodeId).filter(|&v| self.know.get(v).is_some_and(|x| x >= target)).count();

        self.cur_slot = None;
        self.chosen.clear();
        self.chosen.reserve(n);
        self.chosen.resize(pre.coarse.num_clusters(), 0);
        self.active_fines.clear();
        self.active_fines.reserve(pre.fines.len());

        reset_cluster_tables(&mut self.fine_knowing, &mut self.fine_live, &pre.fines, n);
        reset_cluster_tables(&mut self.bg_knowing, &mut self.bg_live, &pre.bg, n);

        self.m_down.reset(n);
        self.m_up.reset(n);
        self.m_down2.reset(n);
        self.b_down.reset(n);
        self.b_up.reset(n);
        self.b_down2.reset(n);

        self.alg4_main.reset();
        self.alg4_main.participating.reserve(n);
        self.alg4_bg.reset();
        self.alg4_bg.participating.reserve(n);

        self.rng = rng::stream_rng(seed, 0xC0);
        self.scratch_idx.clear();
        self.scratch_idx.reserve(n);

        // Register initial knowledge in the per-cluster counters.
        for v in 0..n as u32 {
            if self.know.get(v).is_some() {
                self.register_knowing(pre, v);
            }
        }
    }

    fn register_knowing(&mut self, pre: &Precomputed, v: NodeId) {
        for (fi, fine) in pre.fines.iter().enumerate() {
            let c = fine.partition.cluster_index(v) as usize;
            if self.fine_knowing[fi][c] == 0 {
                self.fine_live[fi].push(c as u32);
            }
            self.fine_knowing[fi][c] += 1;
        }
        for (bi, bg) in pre.bg.iter().enumerate() {
            let c = bg.partition.cluster_index(v) as usize;
            if self.bg_knowing[bi][c] == 0 {
                self.bg_live[bi].push(c as u32);
            }
            self.bg_knowing[bi][c] += 1;
        }
    }

    fn learn(&mut self, pre: &Precomputed, v: NodeId, value: u64) {
        let old = self.know.get(v);
        let new = old.map_or(value, |o| o.max(value));
        if old == Some(new) {
            return;
        }
        self.know.set(v, new);
        if old.is_none() {
            self.register_knowing(pre, v);
        }
        if old.is_none_or(|o| o < self.target) && new >= self.target {
            self.num_know_target += 1;
        }
    }

    fn roll_slot(&mut self, pre: &Precomputed, params: &CompeteParams, seed: u64, slot: u64) {
        if self.cur_slot == Some(slot) {
            return;
        }
        self.cur_slot = Some(slot);
        let nf = pre.fines.len() as u64;
        match params.sequence_scope {
            SequenceScope::PerCoarseCluster => {
                for cc in 0..self.chosen.len() {
                    let r = rng::derive(rng::derive(seed, 0xA11CE ^ cc as u64), slot);
                    self.chosen[cc] = (r % nf) as u32;
                }
            }
            SequenceScope::Global => {
                let pick = (rng::derive(seed, 0xA11CE ^ slot) % nf) as u32;
                for c in self.chosen.iter_mut() {
                    *c = pick;
                }
            }
        }
        self.active_fines.clear();
        for i in 0..self.chosen.len() {
            let f = self.chosen[i];
            if !self.active_fines.contains(&f) {
                self.active_fines.push(f);
            }
        }
    }

    /// Executes one main-process schedule step.
    fn main_sched_transmit(
        &mut self,
        pre: &Precomputed,
        params: &CompeteParams,
        seed: u64,
        step: u64,
        tx: &mut TxBuf<CompeteMsg>,
    ) {
        let slot = step / pre.main_slot_len;
        if slot >= pre.seq_len {
            return; // sequence exhausted (Algorithm 1's fixed budget)
        }
        let pos = step % pre.main_slot_len;
        if pos == 0 || self.cur_slot != Some(slot) {
            self.roll_slot(pre, params, seed, slot);
        }
        let stamp = slot + 1;
        for k in 0..self.active_fines.len() {
            let fi = self.active_fines[k];
            let fine = &pre.fines[fi as usize];
            match icp_phase(pos, fine.pass_len) {
                Phase::Down1(p) => self.down_transmit(pre, fi, fine, p, stamp, false, false, tx),
                Phase::Up(p) => self.up_transmit(pre, fi, fine, p, stamp, false, tx),
                Phase::Down2(p) => self.down_transmit(pre, fi, fine, p, stamp, true, false, tx),
                Phase::Idle => {}
            }
        }
    }

    /// Executes one background-process schedule step.
    fn bg_sched_transmit(&mut self, pre: &Precomputed, step: u64, tx: &mut TxBuf<CompeteMsg>) {
        let slot = step / pre.bg_slot_len;
        let pos = step % pre.bg_slot_len;
        let bgi = (slot % pre.bg.len() as u64) as u32;
        let fine = &pre.bg[bgi as usize];
        let stamp = slot + 1;
        match icp_phase(pos, fine.pass_len) {
            Phase::Down1(p) => self.down_transmit(pre, bgi, fine, p, stamp, false, true, tx),
            Phase::Up(p) => self.up_transmit(pre, bgi, fine, p, stamp, true, tx),
            Phase::Down2(p) => self.down_transmit(pre, bgi, fine, p, stamp, true, true, tx),
            Phase::Idle => {}
        }
    }

    /// A downcast step (`second_pass` selects the post-upcast repeat; `bg`
    /// selects the background process structures).
    #[allow(clippy::too_many_arguments)]
    fn down_transmit(
        &mut self,
        pre: &Precomputed,
        ci: u32,
        fine: &FineClustering,
        ppos: u64,
        stamp: u64,
        second_pass: bool,
        bg: bool,
        tx: &mut TxBuf<CompeteMsg>,
    ) {
        let w = fine.schedule.window() as u64;
        let window = (ppos / w) as u32;
        let slot_in = (ppos % w) as u32;
        for &u in fine.schedule.nodes_at_depth(window) {
            if fine.schedule.down_slot(u) != slot_in {
                continue;
            }
            if !bg && self.chosen[pre.coarse_idx[u as usize] as usize] != ci {
                continue;
            }
            let value = if window == 0 {
                self.know.get(u)
            } else if second_pass {
                let s = if bg { &self.b_down2 } else { &self.m_down2 };
                s.get(u, stamp)
            } else {
                let s = if bg { &self.b_down } else { &self.m_down };
                s.get(u, stamp)
            };
            if let Some(v) = value {
                let cluster = fine.schedule.cluster(u);
                let msg = if bg {
                    CompeteMsg::BgSched { bg: ci, cluster, value: v }
                } else {
                    CompeteMsg::Sched { fine: ci, cluster, value: v }
                };
                tx.send(u, msg);
            }
        }
    }

    /// An upcast step: deepest layers first, values aggregated via scratch.
    #[allow(clippy::too_many_arguments)]
    fn up_transmit(
        &mut self,
        pre: &Precomputed,
        ci: u32,
        fine: &FineClustering,
        ppos: u64,
        stamp: u64,
        bg: bool,
        tx: &mut TxBuf<CompeteMsg>,
    ) {
        let w = fine.schedule.window() as u64;
        let window = (ppos / w) as u32;
        let slot_in = (ppos % w) as u32;
        let top = fine.radius.min(fine.schedule.max_depth());
        if window > top {
            return;
        }
        let depth = top - window;
        if depth == 0 {
            return; // centers do not transmit upward
        }
        for &u in fine.schedule.nodes_at_depth(depth) {
            if fine.schedule.up_slot(u) != slot_in {
                continue;
            }
            if !bg && self.chosen[pre.coarse_idx[u as usize] as usize] != ci {
                continue;
            }
            // Aggregated value from children plus own participation:
            // a node participates if it knows a message strictly higher than
            // what the first downcast delivered to it (Algorithm 3 step 2).
            let up = if bg { &self.b_up } else { &self.m_up };
            let down = if bg { &self.b_down } else { &self.m_down };
            let aggregated = up.get(u, stamp);
            let own = match (self.know.get(u), down.get(u, stamp)) {
                (Some(k), Some(d)) if k > d => Some(k),
                (Some(k), None) => Some(k),
                _ => None,
            };
            let value = match (aggregated, own) {
                (Some(a), Some(o)) => Some(a.max(o)),
                (Some(a), None) => Some(a),
                (None, Some(o)) => Some(o),
                (None, None) => None,
            };
            if let Some(v) = value {
                let cluster = fine.schedule.cluster(u);
                let msg = if bg {
                    CompeteMsg::BgSched { bg: ci, cluster, value: v }
                } else {
                    CompeteMsg::Sched { fine: ci, cluster, value: v }
                };
                tx.send(u, msg);
            }
        }
    }

    /// One Algorithm-4 decay step for the main or background process.
    fn alg4_transmit(
        &mut self,
        pre: &Precomputed,
        seed: u64,
        log_n: u64,
        step: u64,
        bg: bool,
        tx: &mut TxBuf<CompeteMsg>,
    ) {
        let block = step / log_n;
        let sblock = step % log_n;
        let i = (block % log_n) as i32 + 1;

        // Scope key: which clusterings are active (main: depends on slot).
        let scope = if bg {
            (step / pre.bg_slot_len) % pre.bg.len() as u64
        } else {
            self.cur_slot.unwrap_or(0)
        };
        let state_key = Some((scope, block));
        let need_refresh =
            if bg { self.alg4_bg.key != state_key } else { self.alg4_main.key != state_key };
        if need_refresh {
            let p_participate = (2.0f64).powi(-i);
            if bg {
                let bgi = scope as u32;
                self.alg4_bg.participating.clear();
                for &c in &self.bg_live[bgi as usize] {
                    let coin = rng::derive(
                        rng::derive(rng::derive(seed, 0xB6 ^ bgi as u64), c as u64),
                        block,
                    );
                    if (coin as f64 / u64::MAX as f64) < p_participate {
                        self.alg4_bg.participating.push((bgi, c));
                    }
                }
                self.alg4_bg.key = state_key;
            } else {
                self.alg4_main.participating.clear();
                for k in 0..self.active_fines.len() {
                    let fi = self.active_fines[k];
                    for &c in &self.fine_live[fi as usize] {
                        // Only clusters whose coarse cluster chose this fine
                        // clustering take part.
                        let center = pre.fines[fi as usize].partition.centers()[c as usize];
                        let cc = pre.coarse_idx[center as usize] as usize;
                        if self.chosen[cc] != fi {
                            continue;
                        }
                        let coin = rng::derive(
                            rng::derive(rng::derive(seed, 0xF1 ^ fi as u64), c as u64),
                            block,
                        );
                        if (coin as f64 / u64::MAX as f64) < p_participate {
                            self.alg4_main.participating.push((fi, c));
                        }
                    }
                }
                self.alg4_main.key = state_key;
            }
        }

        let p_tx = (2.0f64).powi(-(sblock as i32 + 1));
        let participating =
            if bg { &self.alg4_bg.participating } else { &self.alg4_main.participating };
        for &(ci, c) in participating {
            let fine = if bg { &pre.bg[ci as usize] } else { &pre.fines[ci as usize] };
            let members = fine.partition.members(c);
            self.scratch_idx.clear();
            bernoulli_into(&mut self.rng, members.len(), p_tx, &mut self.scratch_idx);
            for &mi in &self.scratch_idx {
                let u = members[mi];
                if let Some(v) = self.know.get(u) {
                    let msg = if bg {
                        CompeteMsg::BgAlg4 { bg: ci, cluster: c, value: v }
                    } else {
                        CompeteMsg::Alg4 { fine: ci, cluster: c, value: v }
                    };
                    tx.send(u, msg);
                }
            }
        }
    }

    fn deliver_sched(
        &mut self,
        pre: &Precomputed,
        step: u64,
        node: NodeId,
        fine_idx: u32,
        cluster: u32,
        value: u64,
    ) {
        let slot = step / pre.main_slot_len;
        let pos = step % pre.main_slot_len;
        // The receiver must currently be using the same fine clustering.
        let cc = pre.coarse_idx[node as usize] as usize;
        if self.cur_slot != Some(slot) || self.chosen[cc] != fine_idx {
            return;
        }
        let fine = &pre.fines[fine_idx as usize];
        if fine.schedule.cluster(node) != cluster {
            return;
        }
        if fine.schedule.depth(node) > fine.radius {
            return; // curtailment
        }
        let stamp = slot + 1;
        match icp_phase(pos, fine.pass_len) {
            Phase::Down1(_) => self.m_down.merge_max(node, stamp, value),
            Phase::Up(_) => self.m_up.merge_max(node, stamp, value),
            Phase::Down2(_) => self.m_down2.merge_max(node, stamp, value),
            Phase::Idle => return,
        }
        self.learn(pre, node, value);
    }

    fn deliver_bg_sched(
        &mut self,
        pre: &Precomputed,
        step: u64,
        node: NodeId,
        bgi: u32,
        cluster: u32,
        value: u64,
    ) {
        let slot = step / pre.bg_slot_len;
        let pos = step % pre.bg_slot_len;
        if (slot % pre.bg.len() as u64) as u32 != bgi {
            return;
        }
        let fine = &pre.bg[bgi as usize];
        if fine.schedule.cluster(node) != cluster {
            return;
        }
        if fine.schedule.depth(node) > fine.radius {
            return;
        }
        let stamp = slot + 1;
        match icp_phase(pos, fine.pass_len) {
            Phase::Down1(_) => self.b_down.merge_max(node, stamp, value),
            Phase::Up(_) => self.b_up.merge_max(node, stamp, value),
            Phase::Down2(_) => self.b_down2.merge_max(node, stamp, value),
            Phase::Idle => return,
        }
        self.learn(pre, node, value);
    }
}

/// Re-sizes the per-clustering `(knowing counts, live lists)` tables to the
/// current cluster counts, reusing inner buffers with worst-case (`n`)
/// reservations so cluster-count changes between trials never reallocate.
fn reset_cluster_tables(
    knowing: &mut Vec<Vec<u32>>,
    live: &mut Vec<Vec<u32>>,
    fines: &[FineClustering],
    n: usize,
) {
    knowing.truncate(fines.len());
    knowing.resize_with(fines.len(), Vec::new);
    live.truncate(fines.len());
    live.resize_with(fines.len(), Vec::new);
    for (i, f) in fines.iter().enumerate() {
        let k = f.partition.num_clusters();
        knowing[i].clear();
        knowing[i].reserve(n);
        knowing[i].resize(k, 0);
        live[i].clear();
        live[i].reserve(n);
    }
}

/// How a [`CompeteProtocol`] holds its mutable state: owned for one-shot
/// runs, borrowed from a pool for reused trials.
#[derive(Debug)]
enum StateStore<'s> {
    Owned(Box<CompeteState>),
    Pooled(&'s mut CompeteState),
}

impl StateStore<'_> {
    #[inline]
    fn get(&self) -> &CompeteState {
        match self {
            StateStore::Owned(st) => st,
            StateStore::Pooled(st) => st,
        }
    }

    #[inline]
    fn get_mut(&mut self) -> &mut CompeteState {
        match self {
            StateStore::Owned(st) => st,
            StateStore::Pooled(st) => st,
        }
    }
}

/// The Compete propagation protocol (Algorithms 1–4 combined):
///
/// * global even rounds run the **main process**, odd rounds the
///   **background process** (Algorithm 2), exactly the paper's interleaving;
/// * within each process, even sub-rounds execute the current Intra-Cluster
///   Propagation schedule step and odd sub-rounds the ICP **background
///   decay** (Algorithm 4);
/// * the main process consumes, per coarse cluster, a random sequence of
///   fine clusterings (Algorithm 1 steps 5–7), executing one curtailed ICP
///   (down/up/down, Algorithm 3) per sequence element;
/// * the background process round-robins over its global clusterings.
///
/// The per-node state is the highest message known (`know`); completion is
/// every node knowing the highest source message. All of that mutable state
/// lives in a [`CompeteState`] — owned by default, or borrowed from a pool
/// via [`CompeteProtocol::reuse`] for allocation-free repeated trials.
#[derive(Debug)]
pub struct CompeteProtocol<'p> {
    pre: &'p Precomputed,
    params: CompeteParams,
    seed: u64,
    log_n: u64,
    st: StateStore<'p>,
}

impl<'p> CompeteProtocol<'p> {
    /// Creates the propagation protocol with the given informed `sources`.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or contains an out-of-range node.
    pub fn new(
        pre: &'p Precomputed,
        params: CompeteParams,
        sources: &[(NodeId, u64)],
        seed: u64,
    ) -> CompeteProtocol<'p> {
        let st = StateStore::Owned(Box::new(CompeteState::new(pre, sources, seed)));
        CompeteProtocol { pre, params, seed, log_n: pre.net.log2_n() as u64, st }
    }

    /// Like [`CompeteProtocol::new`] but reusing a pooled [`CompeteState`]:
    /// `state` is reset to exactly the fresh construction (same single code
    /// path), so runs are byte-identical to the owned form while steady-state
    /// trials perform no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or contains an out-of-range node.
    pub fn reuse(
        pre: &'p Precomputed,
        params: CompeteParams,
        sources: &[(NodeId, u64)],
        seed: u64,
        state: &'p mut CompeteState,
    ) -> CompeteProtocol<'p> {
        state.reset(pre, sources, seed);
        CompeteProtocol {
            pre,
            params,
            seed,
            log_n: pre.net.log2_n() as u64,
            st: StateStore::Pooled(state),
        }
    }

    /// Highest message known by `node`.
    pub fn value_of(&self, node: NodeId) -> Option<u64> {
        self.st.get().know.get(node)
    }

    /// Whether every node knows the highest source message.
    pub fn all_know_target(&self) -> bool {
        let st = self.st.get();
        st.num_know_target == st.know.n()
    }

    /// Number of nodes that know the highest source message.
    pub fn num_knowing(&self) -> usize {
        self.st.get().num_know_target
    }

    /// The highest source message (the value Compete must spread).
    pub fn target(&self) -> u64 {
        self.st.get().target
    }

    /// Routes a protocol-local round to (stream, kind, step).
    /// stream: 0 = main, 1 = background; kind: 0 = schedule, 1 = Alg-4 decay.
    fn route(&self, m: Round) -> (u8, u8, u64) {
        let (stream, sub) =
            if self.params.background_process { ((m % 2) as u8, m / 2) } else { (0u8, m) };
        let (kind, step) =
            if self.params.icp_background { ((sub % 2) as u8, sub / 2) } else { (0u8, sub) };
        (stream, kind, step)
    }
}

/// `bernoulli_indices` over `usize` output (local alias to keep call sites
/// short).
fn bernoulli_into(rng: &mut SmallRng, k: usize, p: f64, out: &mut Vec<usize>) {
    rn_sim::rng::bernoulli_indices(rng, k, p, out);
}

impl Protocol for CompeteProtocol<'_> {
    type Msg = CompeteMsg;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<CompeteMsg>) {
        let (stream, kind, step) = self.route(round);
        let (pre, params, seed, log_n) = (self.pre, &self.params, self.seed, self.log_n);
        let st = self.st.get_mut();
        match (stream, kind) {
            (0, 0) => st.main_sched_transmit(pre, params, seed, step, tx),
            (0, 1) => st.alg4_transmit(pre, seed, log_n, step, false, tx),
            (1, 0) => st.bg_sched_transmit(pre, step, tx),
            (1, 1) => st.alg4_transmit(pre, seed, log_n, step, true, tx),
            _ => unreachable!(),
        }
    }

    fn deliver(&mut self, round: Round, node: NodeId, _from: NodeId, msg: &CompeteMsg) {
        let (stream, kind, step) = self.route(round);
        let (pre, accept_foreign) = (self.pre, self.params.alg4_accept_foreign);
        let st = self.st.get_mut();
        match (msg, stream, kind) {
            (&CompeteMsg::Sched { fine, cluster, value }, 0, 0) => {
                st.deliver_sched(pre, step, node, fine, cluster, value)
            }
            (&CompeteMsg::Alg4 { fine, cluster, value }, 0, 1) => {
                // Accept if the node's coarse cluster currently uses this
                // clustering and the cluster matches — or unconditionally
                // when foreign values are merged (they are true source
                // messages; see `CompeteParams::alg4_accept_foreign`).
                let cc = pre.coarse_idx[node as usize] as usize;
                if accept_foreign
                    || (st.chosen[cc] == fine
                        && pre.fines[fine as usize].partition.cluster_index(node) == cluster)
                {
                    st.learn(pre, node, value);
                }
            }
            (&CompeteMsg::BgSched { bg, cluster, value }, 1, 0) => {
                st.deliver_bg_sched(pre, step, node, bg, cluster, value)
            }
            (&CompeteMsg::BgAlg4 { bg, cluster, value }, 1, 1) => {
                let slot = step / pre.bg_slot_len;
                if accept_foreign
                    || ((slot % pre.bg.len() as u64) as u32 == bg
                        && pre.bg[bg as usize].partition.cluster_index(node) == cluster)
                {
                    st.learn(pre, node, value);
                }
            }
            // Message type arriving on the wrong parity: the transmission
            // was triggered by the matching stream, so this cannot happen.
            _ => {}
        }
    }

    fn done(&self, _round: Round) -> bool {
        self.all_know_target()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CompeteParams;
    use crate::precompute::Precomputed;
    use rn_graph::generators;
    use rn_sim::{CollisionModel, NetParams, Simulator};

    fn run_broadcast(g: &rn_graph::Graph, seed: u64, params: CompeteParams) -> (bool, u64) {
        let net = NetParams::of_graph(g);
        let pre = Precomputed::build(g, net, &params, seed);
        let mut proto = CompeteProtocol::new(&pre, params, &[(0, 42)], seed);
        let mut sim = Simulator::new(g, CollisionModel::NoCollisionDetection, seed);
        let stats = sim.run(&mut proto, params.max_rounds(&net));
        (proto.all_know_target(), stats.rounds)
    }

    #[test]
    fn phase_geometry() {
        assert_eq!(icp_phase(0, 10), Phase::Down1(0));
        assert_eq!(icp_phase(9, 10), Phase::Down1(9));
        assert_eq!(icp_phase(10, 10), Phase::Up(0));
        assert_eq!(icp_phase(25, 10), Phase::Down2(5));
        assert_eq!(icp_phase(30, 10), Phase::Idle);
    }

    #[test]
    fn completes_on_small_grid() {
        let g = generators::grid(8, 8);
        let (ok, rounds) = run_broadcast(&g, 3, CompeteParams::default());
        assert!(ok, "broadcast did not complete in {rounds} rounds");
    }

    #[test]
    fn completes_on_path() {
        let g = generators::path(96);
        let (ok, rounds) = run_broadcast(&g, 5, CompeteParams::default());
        assert!(ok, "broadcast did not complete in {rounds} rounds");
    }

    #[test]
    fn reused_state_replays_fresh_runs_exactly() {
        // One CompeteState across graphs and seeds: every reused run must
        // report the same completion round and per-node values as a fresh
        // construction.
        let graphs = [generators::grid(8, 8), generators::path(60)];
        let params = CompeteParams::default();
        let mut state: Option<CompeteState> = None;
        for g in &graphs {
            let net = NetParams::of_graph(g);
            for seed in 0..3u64 {
                let pre = Precomputed::build(g, net, &params, seed);
                let mut fresh = CompeteProtocol::new(&pre, params, &[(0, 42)], seed);
                let mut sim = Simulator::new(g, CollisionModel::NoCollisionDetection, seed);
                let fresh_stats = sim.run(&mut fresh, params.max_rounds(&net));

                match &mut state {
                    Some(st) => st.reset(&pre, &[(0, 42)], seed),
                    slot @ None => *slot = Some(CompeteState::new(&pre, &[(0, 42)], seed)),
                }
                let st = state.as_mut().expect("slot was just filled");
                let mut pooled = CompeteProtocol::reuse(&pre, params, &[(0, 42)], seed, st);
                let mut sim = Simulator::new(g, CollisionModel::NoCollisionDetection, seed);
                let pooled_stats = sim.run(&mut pooled, params.max_rounds(&net));

                assert_eq!(fresh_stats.rounds, pooled_stats.rounds, "seed {seed}");
                assert_eq!(fresh.num_knowing(), pooled.num_knowing());
                for v in g.nodes() {
                    assert_eq!(fresh.value_of(v), pooled.value_of(v), "node {v} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn completes_without_compete_background_inside_one_coarse_cluster() {
        // Fine clusterings live strictly inside coarse clusters, so the main
        // process can never cross a coarse boundary — crossing is the
        // background process's entire job (the paper analyzes bad subpaths
        // with "only the background process", Lemma 4.5). With a single
        // coarse cluster, main + Algorithm 4 must complete on their own.
        let g = generators::grid(8, 8);
        let params = CompeteParams {
            background_process: false,
            coarse_beta_exp: 4.0, // β_c = D^-4: one giant coarse cluster
            ..CompeteParams::default()
        };
        let net = NetParams::of_graph(&g);
        let pre = Precomputed::build(&g, net, &params, 7);
        assert_eq!(pre.coarse.num_clusters(), 1, "test needs a single coarse cluster");
        let mut proto = CompeteProtocol::new(&pre, params, &[(0, 42)], 7);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 7);
        let stats = sim.run(&mut proto, params.max_rounds(&net));
        assert!(proto.all_know_target(), "did not complete in {} rounds", stats.rounds);
    }

    #[test]
    fn main_process_fills_the_source_coarse_cluster() {
        // With BOTH background processes off, the main process must inform
        // (at least) the source's entire coarse cluster — and, since fine
        // clusters cannot span coarse boundaries, nothing outside it.
        let g = generators::grid(8, 8);
        let params = CompeteParams {
            background_process: false,
            icp_background: false,
            ..CompeteParams::default()
        };
        let net = NetParams::of_graph(&g);
        let pre = Precomputed::build(&g, net, &params, 7);
        let source: NodeId = 0;
        let cc = pre.coarse.cluster_index(source);
        let coarse_size = pre.coarse.members(cc).len();
        let mut proto = CompeteProtocol::new(&pre, params, &[(source, 42)], 7);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 7);
        sim.run(&mut proto, 200_000);
        let knowing = proto.num_knowing();
        assert!(
            knowing >= coarse_size * 3 / 4,
            "main process informed {knowing} < 3/4 of the coarse cluster ({coarse_size})"
        );
        for v in g.nodes() {
            if proto.value_of(v).is_some() {
                assert_eq!(
                    pre.coarse.cluster_index(v),
                    cc,
                    "knowledge escaped the coarse cluster without the background process"
                );
            }
        }
    }

    #[test]
    fn multi_source_highest_wins() {
        let g = generators::grid(8, 8);
        let params = CompeteParams::default();
        let net = NetParams::of_graph(&g);
        let pre = Precomputed::build(&g, net, &params, 9);
        let sources = vec![(0 as NodeId, 10u64), (63, 99), (32, 50)];
        let mut proto = CompeteProtocol::new(&pre, params, &sources, 9);
        assert_eq!(proto.target(), 99);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 9);
        sim.run(&mut proto, params.max_rounds(&net));
        assert!(proto.all_know_target());
        for v in g.nodes() {
            assert_eq!(proto.value_of(v), Some(99));
        }
    }

    #[test]
    fn single_node_network_is_trivially_done() {
        let g = rn_graph::Graph::from_edges(1, &[]).unwrap();
        let net = NetParams::of_graph(&g);
        let params = CompeteParams::default();
        let pre = Precomputed::build(&g, net, &params, 1);
        let proto = CompeteProtocol::new(&pre, params, &[(0, 5)], 1);
        assert!(proto.all_know_target());
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_rejected() {
        let g = generators::path(4);
        let net = NetParams::of_graph(&g);
        let params = CompeteParams::default();
        let pre = Precomputed::build(&g, net, &params, 1);
        let _ = CompeteProtocol::new(&pre, params, &[], 1);
    }

    #[test]
    fn knowledge_only_grows() {
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let params = CompeteParams::default();
        let pre = Precomputed::build(&g, net, &params, 2);
        let mut proto = CompeteProtocol::new(&pre, params, &[(0, 7)], 2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 2);
        let mut last = proto.num_knowing();
        for _ in 0..50 {
            sim.run(&mut proto, 100);
            let now = proto.num_knowing();
            assert!(now >= last, "knowledge must be monotone");
            last = now;
            if proto.all_know_target() {
                break;
            }
        }
    }
}
