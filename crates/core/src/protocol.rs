use crate::params::{CompeteParams, SequenceScope};
use crate::precompute::{FineClustering, Precomputed};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rn_graph::NodeId;
use rn_sim::{rng, Protocol, Round, TxBuf, WordBitset};

/// Per-node knowledge in struct-of-arrays form: membership as one bit per
/// node plus a dense value word, instead of a `Vec<Option<u64>>` — half the
/// memory (8 B + 1 bit vs 16 B per node) and a branch-free value read on
/// the propagation hot paths.
#[derive(Debug)]
struct KnowTable {
    informed: WordBitset,
    val: Vec<u64>,
}

impl KnowTable {
    fn new(n: usize) -> KnowTable {
        KnowTable { informed: WordBitset::new(n), val: vec![0; n] }
    }

    fn n(&self) -> usize {
        self.val.len()
    }

    #[inline]
    fn get(&self, v: NodeId) -> Option<u64> {
        self.informed.contains(v as usize).then(|| self.val[v as usize])
    }

    /// Stores `value` for `v`; returns `true` iff `v` was previously
    /// uninformed. Callers own the max-merge policy.
    #[inline]
    fn set(&mut self, v: NodeId, value: u64) -> bool {
        self.val[v as usize] = value;
        self.informed.set(v as usize)
    }
}

/// Messages on the channel during Compete's propagation phase. Every message
/// names the clustering and cluster it belongs to, so receivers can filter
/// (intra-cluster propagation is per-cluster; cross-cluster transfer happens
/// across successive clusterings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompeteMsg {
    /// Main-process ICP schedule transmission (Algorithm 3 over Algorithm 1's
    /// fine clusterings).
    Sched {
        /// Index into the precomputed fine clusterings.
        fine: u32,
        /// Cluster index within that clustering.
        cluster: u32,
        /// The message value being propagated.
        value: u64,
    },
    /// Main-process ICP background decay (Algorithm 4).
    Alg4 {
        /// Index into the precomputed fine clusterings.
        fine: u32,
        /// Cluster index within that clustering.
        cluster: u32,
        /// The message value being propagated.
        value: u64,
    },
    /// Background-process ICP schedule transmission (Algorithm 2).
    BgSched {
        /// Index into the background clusterings.
        bg: u32,
        /// Cluster index within that clustering.
        cluster: u32,
        /// The message value being propagated.
        value: u64,
    },
    /// Background-process ICP decay (Algorithm 4 under Algorithm 2).
    BgAlg4 {
        /// Index into the background clusterings.
        bg: u32,
        /// Cluster index within that clustering.
        cluster: u32,
        /// The message value being propagated.
        value: u64,
    },
}

/// ICP phase geometry: where a within-slot position falls in the
/// down/up/down structure of Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Down1(u64),
    Up(u64),
    Down2(u64),
    Idle,
}

fn icp_phase(pos: u64, pass: u64) -> Phase {
    if pos < pass {
        Phase::Down1(pos)
    } else if pos < 2 * pass {
        Phase::Up(pos - pass)
    } else if pos < 3 * pass {
        Phase::Down2(pos - 2 * pass)
    } else {
        Phase::Idle
    }
}

/// Stamped per-node scratch value (reset implicitly at each slot).
///
/// Callers stamp each slot with a value that is strictly monotone per
/// instance (slot indices derived from the round counter), so instead of a
/// per-node stamp array the scratch keeps one current stamp, a membership
/// bitset, and the list of touched nodes: rolling to a new stamp lazily
/// clears only the nodes actually written in the previous slot. A `get`
/// with any stamp other than the current one reads as unset — exactly the
/// behavior of the old per-node stamp compare under monotone stamps.
#[derive(Debug)]
struct Scratch {
    has: WordBitset,
    val: Vec<u64>,
    touched: Vec<NodeId>,
    cur_stamp: u64,
}

impl Scratch {
    fn new(n: usize) -> Scratch {
        // Real stamps are >= 1 (slot indices offset by one), so starting at
        // 0 means "no slot written yet".
        Scratch { has: WordBitset::new(n), val: vec![0; n], touched: Vec::new(), cur_stamp: 0 }
    }

    #[inline]
    fn roll(&mut self, stamp: u64) {
        if stamp != self.cur_stamp {
            for &v in &self.touched {
                self.has.clear(v as usize);
            }
            self.touched.clear();
            self.cur_stamp = stamp;
        }
    }

    #[inline]
    fn get(&self, v: NodeId, stamp: u64) -> Option<u64> {
        (stamp == self.cur_stamp && self.has.contains(v as usize)).then(|| self.val[v as usize])
    }

    #[inline]
    fn merge_max(&mut self, v: NodeId, stamp: u64, value: u64) {
        self.roll(stamp);
        let vi = v as usize;
        if self.has.set(vi) {
            self.val[vi] = value;
            self.touched.push(v);
        } else if self.val[vi] < value {
            self.val[vi] = value;
        }
    }
}

/// Per-process Algorithm 4 state: which clusters participate in the current
/// decay block.
#[derive(Debug, Default)]
struct Alg4State {
    /// `(clustering index, cluster index)` pairs participating this block.
    participating: Vec<(u32, u32)>,
    /// Key identifying the block the list was computed for.
    key: Option<(u64, u64)>, // (slot-scope, block)
}

/// The Compete propagation protocol (Algorithms 1–4 combined):
///
/// * global even rounds run the **main process**, odd rounds the
///   **background process** (Algorithm 2), exactly the paper's interleaving;
/// * within each process, even sub-rounds execute the current Intra-Cluster
///   Propagation schedule step and odd sub-rounds the ICP **background
///   decay** (Algorithm 4);
/// * the main process consumes, per coarse cluster, a random sequence of
///   fine clusterings (Algorithm 1 steps 5–7), executing one curtailed ICP
///   (down/up/down, Algorithm 3) per sequence element;
/// * the background process round-robins over its global clusterings.
///
/// The per-node state is the highest message known (`know`); completion is
/// every node knowing the highest source message.
#[derive(Debug)]
pub struct CompeteProtocol<'p> {
    pre: &'p Precomputed,
    params: CompeteParams,
    seed: u64,
    log_n: u64,

    know: KnowTable,
    target: u64,
    num_know_target: usize,

    /// Current main-process slot and the fine clustering chosen by each
    /// coarse cluster for it.
    cur_slot: Option<u64>,
    chosen: Vec<u32>,
    active_fines: Vec<u32>,

    /// Per-fine count of knowing members per cluster, plus the list of
    /// clusters that have any knowledge (grow-only).
    fine_knowing: Vec<Vec<u32>>,
    fine_live: Vec<Vec<u32>>,
    bg_knowing: Vec<Vec<u32>>,
    bg_live: Vec<Vec<u32>>,

    // Main ICP scratch.
    m_down: Scratch,
    m_up: Scratch,
    m_down2: Scratch,
    // Background ICP scratch.
    b_down: Scratch,
    b_up: Scratch,
    b_down2: Scratch,

    alg4_main: Alg4State,
    alg4_bg: Alg4State,

    rng: SmallRng,
    scratch_idx: Vec<usize>,
}

impl<'p> CompeteProtocol<'p> {
    /// Creates the propagation protocol with the given informed `sources`.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or contains an out-of-range node.
    pub fn new(
        pre: &'p Precomputed,
        params: CompeteParams,
        sources: &[(NodeId, u64)],
        seed: u64,
    ) -> CompeteProtocol<'p> {
        assert!(!sources.is_empty(), "Compete needs at least one source");
        let n = pre.net.n();
        let mut know = KnowTable::new(n);
        let target = sources.iter().map(|&(_, v)| v).max().expect("nonempty");
        for &(s, v) in sources {
            assert!((s as usize) < n, "source {s} out of range");
            know.set(s, know.get(s).map_or(v, |old| old.max(v)));
        }
        let num_know_target =
            (0..n as NodeId).filter(|&v| know.get(v).is_some_and(|x| x >= target)).count();

        let fine_knowing: Vec<Vec<u32>> =
            pre.fines.iter().map(|f| vec![0; f.partition.num_clusters()]).collect();
        let bg_knowing: Vec<Vec<u32>> =
            pre.bg.iter().map(|f| vec![0; f.partition.num_clusters()]).collect();

        let mut proto = CompeteProtocol {
            pre,
            params,
            seed,
            log_n: pre.net.log2_n() as u64,
            know,
            target,
            num_know_target,
            cur_slot: None,
            chosen: vec![0; pre.coarse.num_clusters()],
            active_fines: Vec::new(),
            fine_knowing,
            fine_live: vec![Vec::new(); pre.fines.len()],
            bg_knowing,
            bg_live: vec![Vec::new(); pre.bg.len()],
            m_down: Scratch::new(n),
            m_up: Scratch::new(n),
            m_down2: Scratch::new(n),
            b_down: Scratch::new(n),
            b_up: Scratch::new(n),
            b_down2: Scratch::new(n),
            alg4_main: Alg4State::default(),
            alg4_bg: Alg4State::default(),
            rng: SmallRng::seed_from_u64(rng::derive(seed, 0xC0)),
            scratch_idx: Vec::new(),
        };
        // Register initial knowledge in the per-cluster counters.
        for v in 0..n as u32 {
            if proto.know.get(v).is_some() {
                proto.register_knowing(v);
            }
        }
        proto
    }

    /// Highest message known by `node`.
    pub fn value_of(&self, node: NodeId) -> Option<u64> {
        self.know.get(node)
    }

    /// Whether every node knows the highest source message.
    pub fn all_know_target(&self) -> bool {
        self.num_know_target == self.know.n()
    }

    /// Number of nodes that know the highest source message.
    pub fn num_knowing(&self) -> usize {
        self.num_know_target
    }

    /// The highest source message (the value Compete must spread).
    pub fn target(&self) -> u64 {
        self.target
    }

    fn register_knowing(&mut self, v: NodeId) {
        for (fi, fine) in self.pre.fines.iter().enumerate() {
            let c = fine.partition.cluster_index(v) as usize;
            if self.fine_knowing[fi][c] == 0 {
                self.fine_live[fi].push(c as u32);
            }
            self.fine_knowing[fi][c] += 1;
        }
        for (bi, bg) in self.pre.bg.iter().enumerate() {
            let c = bg.partition.cluster_index(v) as usize;
            if self.bg_knowing[bi][c] == 0 {
                self.bg_live[bi].push(c as u32);
            }
            self.bg_knowing[bi][c] += 1;
        }
    }

    fn learn(&mut self, v: NodeId, value: u64) {
        let old = self.know.get(v);
        let new = old.map_or(value, |o| o.max(value));
        if old == Some(new) {
            return;
        }
        self.know.set(v, new);
        if old.is_none() {
            self.register_knowing(v);
        }
        if old.is_none_or(|o| o < self.target) && new >= self.target {
            self.num_know_target += 1;
        }
    }

    /// Routes a protocol-local round to (stream, kind, step).
    /// stream: 0 = main, 1 = background; kind: 0 = schedule, 1 = Alg-4 decay.
    fn route(&self, m: Round) -> (u8, u8, u64) {
        let (stream, sub) =
            if self.params.background_process { ((m % 2) as u8, m / 2) } else { (0u8, m) };
        let (kind, step) =
            if self.params.icp_background { ((sub % 2) as u8, sub / 2) } else { (0u8, sub) };
        (stream, kind, step)
    }

    fn roll_slot(&mut self, slot: u64) {
        if self.cur_slot == Some(slot) {
            return;
        }
        self.cur_slot = Some(slot);
        let nf = self.pre.fines.len() as u64;
        match self.params.sequence_scope {
            SequenceScope::PerCoarseCluster => {
                for cc in 0..self.chosen.len() {
                    let r = rng::derive(rng::derive(self.seed, 0xA11CE ^ cc as u64), slot);
                    self.chosen[cc] = (r % nf) as u32;
                }
            }
            SequenceScope::Global => {
                let pick = (rng::derive(self.seed, 0xA11CE ^ slot) % nf) as u32;
                for c in self.chosen.iter_mut() {
                    *c = pick;
                }
            }
        }
        self.active_fines.clear();
        for &f in &self.chosen {
            if !self.active_fines.contains(&f) {
                self.active_fines.push(f);
            }
        }
    }

    /// Executes one main-process schedule step.
    fn main_sched_transmit(&mut self, step: u64, tx: &mut TxBuf<CompeteMsg>) {
        let slot = step / self.pre.main_slot_len;
        if slot >= self.pre.seq_len {
            return; // sequence exhausted (Algorithm 1's fixed budget)
        }
        let pos = step % self.pre.main_slot_len;
        if pos == 0 || self.cur_slot != Some(slot) {
            self.roll_slot(slot);
        }
        let stamp = slot + 1;
        let actives = std::mem::take(&mut self.active_fines);
        for &fi in &actives {
            let fine = &self.pre.fines[fi as usize];
            match icp_phase(pos, fine.pass_len) {
                Phase::Down1(p) => self.down_transmit(fi, fine, p, stamp, false, false, tx),
                Phase::Up(p) => self.up_transmit(fi, fine, p, stamp, false, tx),
                Phase::Down2(p) => self.down_transmit(fi, fine, p, stamp, true, false, tx),
                Phase::Idle => {}
            }
        }
        self.active_fines = actives;
    }

    /// Executes one background-process schedule step.
    fn bg_sched_transmit(&mut self, step: u64, tx: &mut TxBuf<CompeteMsg>) {
        let slot = step / self.pre.bg_slot_len;
        let pos = step % self.pre.bg_slot_len;
        let bgi = (slot % self.pre.bg.len() as u64) as u32;
        let fine = &self.pre.bg[bgi as usize];
        let stamp = slot + 1;
        match icp_phase(pos, fine.pass_len) {
            Phase::Down1(p) => self.down_transmit(bgi, fine, p, stamp, false, true, tx),
            Phase::Up(p) => self.up_transmit(bgi, fine, p, stamp, true, tx),
            Phase::Down2(p) => self.down_transmit(bgi, fine, p, stamp, true, true, tx),
            Phase::Idle => {}
        }
    }

    /// A downcast step (`second_pass` selects the post-upcast repeat; `bg`
    /// selects the background process structures).
    #[allow(clippy::too_many_arguments)]
    fn down_transmit(
        &mut self,
        ci: u32,
        fine: &FineClustering,
        ppos: u64,
        stamp: u64,
        second_pass: bool,
        bg: bool,
        tx: &mut TxBuf<CompeteMsg>,
    ) {
        let w = fine.schedule.window() as u64;
        let window = (ppos / w) as u32;
        let slot_in = (ppos % w) as u32;
        for &u in fine.schedule.nodes_at_depth(window) {
            if fine.schedule.down_slot(u) != slot_in {
                continue;
            }
            if !bg && self.chosen[self.pre.coarse_idx[u as usize] as usize] != ci {
                continue;
            }
            let value = if window == 0 {
                self.know.get(u)
            } else if second_pass {
                let s = if bg { &self.b_down2 } else { &self.m_down2 };
                s.get(u, stamp)
            } else {
                let s = if bg { &self.b_down } else { &self.m_down };
                s.get(u, stamp)
            };
            if let Some(v) = value {
                let cluster = fine.schedule.cluster(u);
                let msg = if bg {
                    CompeteMsg::BgSched { bg: ci, cluster, value: v }
                } else {
                    CompeteMsg::Sched { fine: ci, cluster, value: v }
                };
                tx.send(u, msg);
            }
        }
    }

    /// An upcast step: deepest layers first, values aggregated via scratch.
    fn up_transmit(
        &mut self,
        ci: u32,
        fine: &FineClustering,
        ppos: u64,
        stamp: u64,
        bg: bool,
        tx: &mut TxBuf<CompeteMsg>,
    ) {
        let w = fine.schedule.window() as u64;
        let window = (ppos / w) as u32;
        let slot_in = (ppos % w) as u32;
        let top = fine.radius.min(fine.schedule.max_depth());
        if window > top {
            return;
        }
        let depth = top - window;
        if depth == 0 {
            return; // centers do not transmit upward
        }
        for &u in fine.schedule.nodes_at_depth(depth) {
            if fine.schedule.up_slot(u) != slot_in {
                continue;
            }
            if !bg && self.chosen[self.pre.coarse_idx[u as usize] as usize] != ci {
                continue;
            }
            // Aggregated value from children plus own participation:
            // a node participates if it knows a message strictly higher than
            // what the first downcast delivered to it (Algorithm 3 step 2).
            let up = if bg { &self.b_up } else { &self.m_up };
            let down = if bg { &self.b_down } else { &self.m_down };
            let aggregated = up.get(u, stamp);
            let own = match (self.know.get(u), down.get(u, stamp)) {
                (Some(k), Some(d)) if k > d => Some(k),
                (Some(k), None) => Some(k),
                _ => None,
            };
            let value = match (aggregated, own) {
                (Some(a), Some(o)) => Some(a.max(o)),
                (Some(a), None) => Some(a),
                (None, Some(o)) => Some(o),
                (None, None) => None,
            };
            if let Some(v) = value {
                let cluster = fine.schedule.cluster(u);
                let msg = if bg {
                    CompeteMsg::BgSched { bg: ci, cluster, value: v }
                } else {
                    CompeteMsg::Sched { fine: ci, cluster, value: v }
                };
                tx.send(u, msg);
            }
        }
    }

    /// One Algorithm-4 decay step for the main or background process.
    fn alg4_transmit(&mut self, step: u64, bg: bool, tx: &mut TxBuf<CompeteMsg>) {
        let block = step / self.log_n;
        let sblock = step % self.log_n;
        let i = (block % self.log_n) as i32 + 1;

        // Scope key: which clusterings are active (main: depends on slot).
        let scope = if bg {
            (step / self.pre.bg_slot_len) % self.pre.bg.len() as u64
        } else {
            self.cur_slot.unwrap_or(0)
        };
        let state_key = Some((scope, block));
        let need_refresh =
            if bg { self.alg4_bg.key != state_key } else { self.alg4_main.key != state_key };
        if need_refresh {
            let p_participate = (2.0f64).powi(-i);
            let mut participating = Vec::new();
            if bg {
                let bgi = scope as u32;
                for &c in &self.bg_live[bgi as usize] {
                    let coin = rng::derive(
                        rng::derive(rng::derive(self.seed, 0xB6 ^ bgi as u64), c as u64),
                        block,
                    );
                    if (coin as f64 / u64::MAX as f64) < p_participate {
                        participating.push((bgi, c));
                    }
                }
                self.alg4_bg = Alg4State { participating, key: state_key };
            } else {
                let actives = self.active_fines.clone();
                for &fi in &actives {
                    for &c in &self.fine_live[fi as usize] {
                        // Only clusters whose coarse cluster chose this fine
                        // clustering take part.
                        let center = self.pre.fines[fi as usize].partition.centers()[c as usize];
                        let cc = self.pre.coarse_idx[center as usize] as usize;
                        if self.chosen[cc] != fi {
                            continue;
                        }
                        let coin = rng::derive(
                            rng::derive(rng::derive(self.seed, 0xF1 ^ fi as u64), c as u64),
                            block,
                        );
                        if (coin as f64 / u64::MAX as f64) < p_participate {
                            participating.push((fi, c));
                        }
                    }
                }
                self.alg4_main = Alg4State { participating, key: state_key };
            }
        }

        let p_tx = (2.0f64).powi(-(sblock as i32 + 1));
        let participating = if bg {
            std::mem::take(&mut self.alg4_bg.participating)
        } else {
            std::mem::take(&mut self.alg4_main.participating)
        };
        for &(ci, c) in &participating {
            let fine = if bg { &self.pre.bg[ci as usize] } else { &self.pre.fines[ci as usize] };
            let members = fine.partition.members(c);
            self.scratch_idx.clear();
            bernoulli_into(&mut self.rng, members.len(), p_tx, &mut self.scratch_idx);
            for &mi in &self.scratch_idx {
                let u = members[mi];
                if let Some(v) = self.know.get(u) {
                    let msg = if bg {
                        CompeteMsg::BgAlg4 { bg: ci, cluster: c, value: v }
                    } else {
                        CompeteMsg::Alg4 { fine: ci, cluster: c, value: v }
                    };
                    tx.send(u, msg);
                }
            }
        }
        if bg {
            self.alg4_bg.participating = participating;
        } else {
            self.alg4_main.participating = participating;
        }
    }

    fn deliver_sched(&mut self, step: u64, node: NodeId, fine_idx: u32, cluster: u32, value: u64) {
        let slot = step / self.pre.main_slot_len;
        let pos = step % self.pre.main_slot_len;
        // The receiver must currently be using the same fine clustering.
        let cc = self.pre.coarse_idx[node as usize] as usize;
        if self.cur_slot != Some(slot) || self.chosen[cc] != fine_idx {
            return;
        }
        let fine = &self.pre.fines[fine_idx as usize];
        if fine.schedule.cluster(node) != cluster {
            return;
        }
        if fine.schedule.depth(node) > fine.radius {
            return; // curtailment
        }
        let stamp = slot + 1;
        match icp_phase(pos, fine.pass_len) {
            Phase::Down1(_) => self.m_down.merge_max(node, stamp, value),
            Phase::Up(_) => self.m_up.merge_max(node, stamp, value),
            Phase::Down2(_) => self.m_down2.merge_max(node, stamp, value),
            Phase::Idle => return,
        }
        self.learn(node, value);
    }

    fn deliver_bg_sched(&mut self, step: u64, node: NodeId, bgi: u32, cluster: u32, value: u64) {
        let slot = step / self.pre.bg_slot_len;
        let pos = step % self.pre.bg_slot_len;
        if (slot % self.pre.bg.len() as u64) as u32 != bgi {
            return;
        }
        let fine = &self.pre.bg[bgi as usize];
        if fine.schedule.cluster(node) != cluster {
            return;
        }
        if fine.schedule.depth(node) > fine.radius {
            return;
        }
        let stamp = slot + 1;
        match icp_phase(pos, fine.pass_len) {
            Phase::Down1(_) => self.b_down.merge_max(node, stamp, value),
            Phase::Up(_) => self.b_up.merge_max(node, stamp, value),
            Phase::Down2(_) => self.b_down2.merge_max(node, stamp, value),
            Phase::Idle => return,
        }
        self.learn(node, value);
    }
}

/// `bernoulli_indices` over `usize` output (local alias to keep call sites
/// short).
fn bernoulli_into(rng: &mut SmallRng, k: usize, p: f64, out: &mut Vec<usize>) {
    rn_sim::rng::bernoulli_indices(rng, k, p, out);
}

impl Protocol for CompeteProtocol<'_> {
    type Msg = CompeteMsg;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<CompeteMsg>) {
        let (stream, kind, step) = self.route(round);
        match (stream, kind) {
            (0, 0) => self.main_sched_transmit(step, tx),
            (0, 1) => self.alg4_transmit(step, false, tx),
            (1, 0) => self.bg_sched_transmit(step, tx),
            (1, 1) => self.alg4_transmit(step, true, tx),
            _ => unreachable!(),
        }
    }

    fn deliver(&mut self, round: Round, node: NodeId, _from: NodeId, msg: &CompeteMsg) {
        let (stream, kind, step) = self.route(round);
        match (msg, stream, kind) {
            (&CompeteMsg::Sched { fine, cluster, value }, 0, 0) => {
                self.deliver_sched(step, node, fine, cluster, value)
            }
            (&CompeteMsg::Alg4 { fine, cluster, value }, 0, 1) => {
                // Accept if the node's coarse cluster currently uses this
                // clustering and the cluster matches — or unconditionally
                // when foreign values are merged (they are true source
                // messages; see `CompeteParams::alg4_accept_foreign`).
                let cc = self.pre.coarse_idx[node as usize] as usize;
                if self.params.alg4_accept_foreign
                    || (self.chosen[cc] == fine
                        && self.pre.fines[fine as usize].partition.cluster_index(node) == cluster)
                {
                    self.learn(node, value);
                }
            }
            (&CompeteMsg::BgSched { bg, cluster, value }, 1, 0) => {
                self.deliver_bg_sched(step, node, bg, cluster, value)
            }
            (&CompeteMsg::BgAlg4 { bg, cluster, value }, 1, 1) => {
                let slot = step / self.pre.bg_slot_len;
                if self.params.alg4_accept_foreign
                    || ((slot % self.pre.bg.len() as u64) as u32 == bg
                        && self.pre.bg[bg as usize].partition.cluster_index(node) == cluster)
                {
                    self.learn(node, value);
                }
            }
            // Message type arriving on the wrong parity: the transmission
            // was triggered by the matching stream, so this cannot happen.
            _ => {}
        }
    }

    fn done(&self, _round: Round) -> bool {
        self.all_know_target()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CompeteParams;
    use crate::precompute::Precomputed;
    use rn_graph::generators;
    use rn_sim::{CollisionModel, NetParams, Simulator};

    fn run_broadcast(g: &rn_graph::Graph, seed: u64, params: CompeteParams) -> (bool, u64) {
        let net = NetParams::of_graph(g);
        let pre = Precomputed::build(g, net, &params, seed);
        let mut proto = CompeteProtocol::new(&pre, params, &[(0, 42)], seed);
        let mut sim = Simulator::new(g, CollisionModel::NoCollisionDetection, seed);
        let stats = sim.run(&mut proto, params.max_rounds(&net));
        (proto.all_know_target(), stats.rounds)
    }

    #[test]
    fn phase_geometry() {
        assert_eq!(icp_phase(0, 10), Phase::Down1(0));
        assert_eq!(icp_phase(9, 10), Phase::Down1(9));
        assert_eq!(icp_phase(10, 10), Phase::Up(0));
        assert_eq!(icp_phase(25, 10), Phase::Down2(5));
        assert_eq!(icp_phase(30, 10), Phase::Idle);
    }

    #[test]
    fn completes_on_small_grid() {
        let g = generators::grid(8, 8);
        let (ok, rounds) = run_broadcast(&g, 3, CompeteParams::default());
        assert!(ok, "broadcast did not complete in {rounds} rounds");
    }

    #[test]
    fn completes_on_path() {
        let g = generators::path(96);
        let (ok, rounds) = run_broadcast(&g, 5, CompeteParams::default());
        assert!(ok, "broadcast did not complete in {rounds} rounds");
    }

    #[test]
    fn completes_without_compete_background_inside_one_coarse_cluster() {
        // Fine clusterings live strictly inside coarse clusters, so the main
        // process can never cross a coarse boundary — crossing is the
        // background process's entire job (the paper analyzes bad subpaths
        // with "only the background process", Lemma 4.5). With a single
        // coarse cluster, main + Algorithm 4 must complete on their own.
        let g = generators::grid(8, 8);
        let params = CompeteParams {
            background_process: false,
            coarse_beta_exp: 4.0, // β_c = D^-4: one giant coarse cluster
            ..CompeteParams::default()
        };
        let net = NetParams::of_graph(&g);
        let pre = Precomputed::build(&g, net, &params, 7);
        assert_eq!(pre.coarse.num_clusters(), 1, "test needs a single coarse cluster");
        let mut proto = CompeteProtocol::new(&pre, params, &[(0, 42)], 7);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 7);
        let stats = sim.run(&mut proto, params.max_rounds(&net));
        assert!(proto.all_know_target(), "did not complete in {} rounds", stats.rounds);
    }

    #[test]
    fn main_process_fills_the_source_coarse_cluster() {
        // With BOTH background processes off, the main process must inform
        // (at least) the source's entire coarse cluster — and, since fine
        // clusters cannot span coarse boundaries, nothing outside it.
        let g = generators::grid(8, 8);
        let params = CompeteParams {
            background_process: false,
            icp_background: false,
            ..CompeteParams::default()
        };
        let net = NetParams::of_graph(&g);
        let pre = Precomputed::build(&g, net, &params, 7);
        let source: NodeId = 0;
        let cc = pre.coarse.cluster_index(source);
        let coarse_size = pre.coarse.members(cc).len();
        let mut proto = CompeteProtocol::new(&pre, params, &[(source, 42)], 7);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 7);
        sim.run(&mut proto, 200_000);
        let knowing = proto.num_knowing();
        assert!(
            knowing >= coarse_size * 3 / 4,
            "main process informed {knowing} < 3/4 of the coarse cluster ({coarse_size})"
        );
        for v in g.nodes() {
            if proto.value_of(v).is_some() {
                assert_eq!(
                    pre.coarse.cluster_index(v),
                    cc,
                    "knowledge escaped the coarse cluster without the background process"
                );
            }
        }
    }

    #[test]
    fn multi_source_highest_wins() {
        let g = generators::grid(8, 8);
        let params = CompeteParams::default();
        let net = NetParams::of_graph(&g);
        let pre = Precomputed::build(&g, net, &params, 9);
        let sources = vec![(0 as NodeId, 10u64), (63, 99), (32, 50)];
        let mut proto = CompeteProtocol::new(&pre, params, &sources, 9);
        assert_eq!(proto.target(), 99);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 9);
        sim.run(&mut proto, params.max_rounds(&net));
        assert!(proto.all_know_target());
        for v in g.nodes() {
            assert_eq!(proto.value_of(v), Some(99));
        }
    }

    #[test]
    fn single_node_network_is_trivially_done() {
        let g = rn_graph::Graph::from_edges(1, &[]).unwrap();
        let net = NetParams::of_graph(&g);
        let params = CompeteParams::default();
        let pre = Precomputed::build(&g, net, &params, 1);
        let proto = CompeteProtocol::new(&pre, params, &[(0, 5)], 1);
        assert!(proto.all_know_target());
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_rejected() {
        let g = generators::path(4);
        let net = NetParams::of_graph(&g);
        let params = CompeteParams::default();
        let pre = Precomputed::build(&g, net, &params, 1);
        let _ = CompeteProtocol::new(&pre, params, &[], 1);
    }

    #[test]
    fn knowledge_only_grows() {
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let params = CompeteParams::default();
        let pre = Precomputed::build(&g, net, &params, 2);
        let mut proto = CompeteProtocol::new(&pre, params, &[(0, 7)], 2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 2);
        let mut last = proto.num_knowing();
        for _ in 0..50 {
            sim.run(&mut proto, 100);
            let now = proto.num_knowing();
            assert!(now >= last, "knowledge must be monotone");
            last = now;
            if proto.all_know_target() {
                break;
            }
        }
    }
}
