//! Offline shim for `serde_derive`.
//!
//! The workspace's `serde` shim gives `Serialize`/`Deserialize` blanket
//! implementations, so the derives only need to accept the attribute
//! grammar (`#[serde(...)]`) and emit nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
