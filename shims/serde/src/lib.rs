//! Offline shim for the `serde` facade.
//!
//! No serializer backend ships in this environment, so `Serialize` and
//! `Deserialize` are marker traits with blanket implementations and the
//! re-exported derives expand to nothing. Code can keep its
//! `#[derive(Serialize, Deserialize)]` annotations and trait bounds;
//! swapping in real serde later is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-implemented owned-deserialization marker.
    pub trait DeserializeOwned {}

    impl<T: ?Sized> DeserializeOwned for T {}
}
