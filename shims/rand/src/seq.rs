//! Sequence helpers, mirroring `rand::seq`.

use crate::RngCore;

/// Slice extension trait providing in-place shuffling and random choice.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}
