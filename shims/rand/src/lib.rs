//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny, deterministic stand-in: [`rngs::SmallRng`] is a
//! xoshiro256++ generator seeded via SplitMix64, and the [`Rng`] /
//! [`SeedableRng`] / [`seq::SliceRandom`] traits cover exactly the calls
//! made by the simulation crates (`gen`, `gen_range`, `gen_bool`,
//! `seed_from_u64`, `shuffle`, ...). Streams are stable across runs and
//! platforms, which the determinism test suite relies on.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform bits for integers, uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from the given range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (kept for API compatibility; unused by the shim helpers).
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Standard-distribution sampling, covering the types the workspace draws.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SmallRng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
