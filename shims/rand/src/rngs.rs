//! Concrete generators. Only [`SmallRng`] is provided: a xoshiro256++
//! generator (the same family real `rand` 0.8 uses for `SmallRng` on
//! 64-bit targets), seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic, non-cryptographic PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        SmallRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        SmallRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}
