//! Case execution: configuration, per-case RNG derivation, pass/reject
//! accounting and failure reporting.

pub use rand::rngs::SmallRng as TestRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; the shim favors fast CI suites.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SHIM_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SHIM_SEED must be a u64, got {s:?}")),
        Err(_) => 0x5ee0_d075_u64,
    }
}

/// Runs `f` until `config.cases` cases pass, panicking on the first failure
/// with enough context (case index + seed) to replay it.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = base_seed();
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let mut case: u64 = 0;
    let reject_budget = 16 * u64::from(config.cases) + 256;
    while passed < config.cases {
        let case_seed = base ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = TestRng::seed_from_u64(case_seed);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "[{name}] too many rejected cases ({rejected}) — \
                     prop_assume! conditions are too restrictive"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "[{name}] property failed at case {case} \
                     (base seed {base:#x}, case seed {case_seed:#x}):\n{msg}"
                );
            }
        }
        case += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_case_panics_with_replay_info() {
        let cfg = ProptestConfig::with_cases(5);
        let err = std::panic::catch_unwind(|| {
            run_cases(&cfg, "demo", |_rng| Err(TestCaseError::fail("boom")));
        })
        .expect_err("a failing property must panic");
        let msg = err.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains("[demo]"), "panic names the test: {msg}");
        assert!(msg.contains("case 0"), "panic names the case index: {msg}");
        assert!(msg.contains("boom"), "panic carries the assertion message: {msg}");
        assert!(msg.contains("case seed"), "panic carries the replay seed: {msg}");
    }

    #[test]
    fn rejections_do_not_count_as_cases() {
        let cfg = ProptestConfig::with_cases(8);
        let mut calls = 0u32;
        run_cases(&cfg, "demo", |_rng| {
            calls += 1;
            if calls.is_multiple_of(2) {
                Err(TestCaseError::reject("even call"))
            } else {
                Ok(())
            }
        });
        // Passes land on odd calls, so the 8th pass is call 15 and the
        // runner stops there: 8 passes, 7 interleaved rejections.
        assert_eq!(calls, 15, "8 passes interleaved with 7 rejections");
    }
}
