//! `any::<T>()` support for primitive types.

use std::marker::PhantomData;

use crate::strategy::Any;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}
