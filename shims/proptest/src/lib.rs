//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! crates.io is unreachable in the build environment, so this crate
//! reimplements the surface the property-test suites rely on:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`, `boxed`;
//! * range / tuple / [`Just`] / `any::<T>()` strategies;
//! * [`collection::vec`] and [`collection::btree_map`];
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//!   plus `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//!   `prop_assume!`.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Cases are generated from a deterministic per-case seed
//! (override the base seed with `PROPTEST_SHIM_SEED`), and a failing case
//! panics with its case number and seed so it can be replayed.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The `proptest!` macro: wraps `fn name(pat in strategy, ...) { body }`
/// items into `#[test]` functions that run many sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |__shim_rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __shim_rng);)+
                    let mut __shim_case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __shim_case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ["assertion failed: ", stringify!($cond)].concat(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__shim_l, __shim_r) = (&$lhs, &$rhs);
        if !(*__shim_l == *__shim_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                stringify!($lhs),
                stringify!($rhs),
                __shim_l,
                __shim_r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__shim_l, __shim_r) = (&$lhs, &$rhs);
        if !(*__shim_l == *__shim_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                __shim_l,
                __shim_r
            )));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__shim_l, __shim_r) = (&$lhs, &$rhs);
        if *__shim_l == *__shim_r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: `{:?}`",
                stringify!($lhs),
                stringify!($rhs),
                __shim_l
            )));
        }
    }};
}

/// Rejects (skips) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
