//! The [`Strategy`] trait and the combinator/range/tuple strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of random values of type `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the per-case RNG state.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to build and sample a second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Box::new(move |rng| inner.sample(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Marker strategy returned by [`crate::arbitrary::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);
