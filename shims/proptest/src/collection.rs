//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An inclusive size range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` with a target size drawn
/// from `size`. Duplicate keys are retried a bounded number of times, so
/// the realized size can fall below the target when the key domain is
/// small (matching proptest's tolerance for under-filled maps).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size: size.into() }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0usize;
        while map.len() < target && attempts < 10 * target + 16 {
            attempts += 1;
            map.insert(self.keys.sample(rng), self.values.sample(rng));
        }
        map
    }
}
