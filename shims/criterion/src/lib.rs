//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The benches compile and run against this harness exactly as they would
//! against real criterion (`Criterion`, `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!`). Measurement is intentionally
//! simple: each sample times a batch of iterations with `std::time::Instant`
//! and the harness reports min / median / max per-iteration wall time.
//! Swap in real criterion via the manifest when crates.io is reachable for
//! statistically rigorous numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns `x` while preventing the optimizer from deleting its computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each registered bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _criterion: self }
    }
}

/// A named benchmark group; see [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into a printable benchmark id.
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing handle passed to the bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    pending_samples: usize,
}

impl Bencher {
    /// Times `f`, running `iters_per_sample` iterations per sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.pending_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / self.iters_per_sample as u32);
        }
        self.pending_samples = 0;
    }
}

fn run_one<F>(label: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one untimed iteration batch.
    let mut warmup = Bencher { samples: Vec::new(), iters_per_sample: 1, pending_samples: 1 };
    f(&mut warmup);

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
        pending_samples: sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("bench {label:<40} (no samples: closure never called iter)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    println!(
        "bench {label:<40} min {min:>12?}  median {median:>12?}  max {max:>12?}  ({} samples)",
        samples.len()
    );
}

/// Declares a function that runs the listed benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
