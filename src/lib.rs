//! Umbrella crate for the radio-networks workspace: a complete, tested
//! reproduction of *"Exploiting Spontaneous Transmissions for Broadcasting
//! and Leader Election in Radio Networks"* (Czumaj & Davies, PODC 2017).
//!
//! This crate re-exports the public APIs of every subsystem so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`graph`] — topologies and graph algorithms;
//! * [`sim`] — the synchronous radio-network simulator;
//! * [`decay`] — the Decay primitive and classic decay broadcasts;
//! * [`cluster`] — Partition(β) clustering and the Section 6 analysis;
//! * [`schedule`] — intra-cluster broadcast/convergecast schedules;
//! * [`core`] — Compete, broadcasting and leader election (the paper);
//! * [`baselines`] — the comparison algorithms of the paper's §1.3;
//! * [`bench`] — the scenario registry and campaign runner (plus the
//!   `experiments` binary's experiment suite).
//!
//! # Quickstart
//!
//! ```
//! use radio_networks::prelude::*;
//!
//! // An ad-hoc deployment: 300 stations, unit-disk connectivity.
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let g = graph::generators::random_geometric(300, 0.08, &mut rng);
//!
//! // Broadcast from station 0 with the paper's algorithm.
//! let report = core::broadcast(&g, 0, &core::CompeteParams::default(), 42)
//!     .expect("broadcast run");
//! assert!(report.completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rn_baselines as baselines;
pub use rn_bench as bench;
pub use rn_cluster as cluster;
pub use rn_core as core;
pub use rn_decay as decay;
pub use rn_graph as graph;
pub use rn_schedule as schedule;
pub use rn_sim as sim;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::{baselines, cluster, core, decay, graph, schedule, sim};
    pub use rand::rngs::SmallRng;
    pub use rand::{Rng, SeedableRng};
    pub use rn_graph::{Graph, NodeId};
    pub use rn_sim::{CollisionModel, NetParams, Protocol, Simulator};
}
