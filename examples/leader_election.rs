//! Leader election in a sensor field (Algorithm 6 of the paper): candidates
//! self-select with probability Θ(log n / n), draw random IDs, and the
//! network Competes on the IDs — completing in broadcast time.
//!
//! ```text
//! cargo run --release --example leader_election
//! ```

use radio_networks::prelude::*;

fn main() {
    // A long corridor deployment: the hard, large-diameter regime.
    let g = graph::generators::grid(100, 6);
    println!("corridor: n = {}, D = {}", g.n(), g.diameter());

    let params = core::CompeteParams::default();
    for seed in 0..3 {
        let report = core::leader_election(&g, &params, seed).expect("connected");
        println!(
            "seed {seed}: leader = {:?} ({} candidates, unique winner: {}), \
             rounds = {} (+{} charged precompute)",
            report.leader,
            report.num_candidates,
            report.unique_winner,
            report.compete.propagation_rounds,
            report.compete.charged_precompute_rounds,
        );
        assert!(report.compete.completed, "leader election must reach everyone");
    }

    // Compare with the classical reduction: binary search over the ID space
    // with multi-source BGI broadcast probes — a Θ(log n) multiplicative
    // overhead that Algorithm 6 removes.
    let net = NetParams::new(g.n(), g.diameter());
    let classic =
        baselines::binary_search_leader_election(&g, net, baselines::BroadcastKind::Bgi, 1.0, 0);
    println!(
        "classical binary-search reduction: leader = {:?}, rounds = {} ({} phases)",
        classic.leader, classic.rounds, classic.phases
    );
}
