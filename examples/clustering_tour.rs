//! Tour of the Partition(β) clustering the whole construction rests on:
//! Lemma 2.1's radius/cut guarantees, Theorem 2.2's distance-to-center
//! bound, and the Section 6 quantities — all measured on one deployment.
//!
//! ```text
//! cargo run --release --example clustering_tour
//! ```

use radio_networks::cluster::{stats, theory, Partition};
use radio_networks::prelude::*;

fn main() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = graph::generators::random_geometric(1200, 0.05, &mut rng);
    let d = g.diameter();
    println!("deployment: n = {}, D = {d}\n", g.n());

    println!("Lemma 2.1 — Partition(β) guarantees (10 trials per β):");
    println!(
        "{:>8} {:>10} {:>14} {:>12} {:>8}",
        "β", "clusters", "max radius", "cut frac", "cut/β"
    );
    for j in 1..=6 {
        let beta = (2.0f64).powi(-j);
        let mut clusters = 0.0;
        let mut radius = 0.0;
        let mut cut = 0.0;
        for _ in 0..10 {
            let p = Partition::compute(&g, beta, &mut rng);
            let s = stats::PartitionStats::measure(&g, &p);
            clusters += s.num_clusters as f64 / 10.0;
            radius += s.max_radius as f64 / 10.0;
            cut += s.cut_fraction / 10.0;
        }
        println!(
            "{:>8} {:>10.1} {:>14.1} {:>12.4} {:>8.3}",
            format!("2^-{j}"),
            clusters,
            radius,
            cut,
            cut / beta
        );
    }

    // Theorem 2.2: expected distance to the cluster center, normalized.
    let v = (g.n() / 2) as NodeId;
    let log_n = (g.n() as f64).log2();
    let log_d = (d as f64).log2();
    println!("\nTheorem 2.2 — E[dist(v, center)]·β·logD/logn for node {v} (20 trials per j):");
    for j in 1..=6 {
        let beta = (2.0f64).powi(-j);
        let e = stats::mean_dist_to_center_of(&g, beta, v, 20, &mut rng);
        println!("  j={j}: E[dist] = {e:>6.2}, normalized = {:.3}", e * beta * log_d / log_n);
    }

    // Section 6: the computable analysis quantities.
    let x = theory::layer_vector(&g, v);
    let beta = 0.25;
    println!("\nSection 6 quantities at β = 1/4 for node {v}:");
    println!("  S_x,β                = {:.2}", theory::s_value(&x, beta));
    println!("  Lemma 6.1 bound 5S   = {:.2}", theory::lemma_6_1_bound(&x, beta));
    let f = theory::transform_f(&x);
    println!("  S_f(x),β             = {:.2} (Lemma 6.2: S_x ≤ 11·S_f)", theory::s_value(&f, beta));
    let ks = theory::ratio_sequence(&theory::x_prime(&x));
    println!(
        "  ratio sequence k_i   = {:?}",
        ks.iter().map(|k| (k * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!(
        "  bad j in [1, logD/2] = {} (Lemma 6.7 bound: {:.2})",
        theory::count_bad_j(&ks, 1, (0.5 * log_d) as i64, log_n, log_d),
        0.04 * log_d
    );
}
