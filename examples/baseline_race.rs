//! Race the broadcasting algorithms of the paper's §1.3 across diameters —
//! BGI'92 vs truncated-decay (CR/KP-style) vs Haeupler–Wajc mode vs this
//! paper — and watch the normalized costs.
//!
//! ```text
//! cargo run --release --example baseline_race
//! ```

use radio_networks::prelude::*;

fn main() {
    println!(
        "{:<14} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "graph", "n", "D", "BGI", "CR-style", "HW-mode", "CD'17"
    );
    for m in [24usize, 48, 72] {
        let g = graph::generators::grid(m, m);
        race(&format!("grid-{m}x{m}"), &g);
    }
    for n in [768usize, 1536] {
        let g = graph::generators::path(n);
        race(&format!("path-{n}"), &g);
    }
    println!(
        "\nPropagation rounds only; the clustering algorithms additionally pay an O(D)-class\n\
         precompute (see EXPERIMENTS.md). The paper's claims are asymptotic: the point here\n\
         is the *shape* — BGI grows like D·log n, CD'17 like D·log n/log D."
    );
}

fn race(name: &str, g: &Graph) {
    let net = NetParams::new(g.n(), g.diameter_double_sweep());
    let seed = 7;
    let bgi = baselines::bgi_broadcast(g, net, 0, seed);
    let cr = baselines::truncated_broadcast(g, net, 0, seed);
    let hw = core::compete_with_net(g, net, &[(0, 1)], &core::CompeteParams::haeupler_wajc(), seed)
        .expect("valid");
    let cd = core::compete_with_net(g, net, &[(0, 1)], &core::CompeteParams::default(), seed)
        .expect("valid");
    assert!(bgi.completed && cr.completed && hw.completed && cd.completed);
    println!(
        "{:<14} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
        name,
        g.n(),
        net.diameter(),
        bgi.rounds,
        cr.rounds,
        hw.propagation_rounds,
        cd.propagation_rounds
    );
}
