//! Campaigns: cross any protocols with any topologies — as data, not code.
//!
//! ```text
//! cargo run --release --example campaign
//! ```
//!
//! The scenario registry makes every workload a string: protocols like
//! `"leader_election"` or `"bgi"`, topologies like `"torus(16x16)"` or
//! `"ring_of_cliques(6,8)"`. A [`Campaign`] crosses the axes, fans trials
//! out across threads, and reports both a markdown table and a versioned
//! JSON document (`rn-bench-results/v1`) that is byte-identical for a fixed
//! master seed.

use radio_networks::bench::{Campaign, ProtocolSpec, ScenarioSpec, TrialPlan};
use radio_networks::graph::TopologySpec;
use radio_networks::sim::{CollisionModel, FaultPlan};

fn main() {
    // 1. An ad-hoc scenario, exactly as `experiments --scenario` parses it:
    //    a protocol/topology pair never named in any experiment code — here
    //    with a fault suffix, so three of the 48 nodes jam half the rounds.
    let scenario: ScenarioSpec =
        "leader_election@ring_of_cliques(6,8)!jam(3,0.5)".parse().expect("valid scenario spec");
    let result = Campaign::single(&scenario, 5).run(2017);
    result.to_table().print();

    // 2. A declarative sweep: the paper's broadcast vs the BGI baseline
    //    across three shapes, straight from spec strings, each cell run both
    //    fault-free and under mild dropout.
    let topologies: Vec<TopologySpec> = ["grid(12x12)", "torus(12x12)", "barbell(24,16)"]
        .iter()
        .map(|s| s.parse().expect("valid topology spec"))
        .collect();
    let sweep = Campaign {
        id: "example_sweep".into(),
        topologies,
        protocols: vec![ProtocolSpec::parse("broadcast"), ProtocolSpec::parse("bgi")],
        models: vec![CollisionModel::NoCollisionDetection],
        faults: vec![FaultPlan::none(), FaultPlan::drop(0.01)],
        plan: TrialPlan::new(3),
    };
    let result = sweep.run(2017);
    result.to_table().print();

    // 3. The machine half: the same run as the versioned JSON results
    //    document (what `--json` writes to disk for cross-PR tracking).
    let json = result.to_json();
    println!("\nJSON results ({} bytes), first cell:", json.len());
    let doc = radio_networks::bench::Json::parse(&json).expect("own output parses");
    let cell = &doc.get("cells").and_then(|c| c.as_arr()).expect("cells")[0];
    println!("{}", cell.render());
}
