//! Quickstart: broadcast a message through an ad-hoc radio deployment with
//! the Czumaj–Davies algorithm.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use radio_networks::prelude::*;

fn main() {
    // An ad-hoc deployment: 500 stations dropped uniformly in the unit
    // square, connected when within transmission range (unit-disk model).
    let mut rng = SmallRng::seed_from_u64(2017);
    let g = graph::generators::random_geometric(500, 0.07, &mut rng);
    println!("deployment: n = {}, m = {}, D = {}", g.n(), g.m(), g.diameter());

    // Station 0 has a message every station must learn.
    let params = core::CompeteParams::default();
    let report = core::broadcast(&g, 0, &params, 42).expect("connected deployment");

    println!("broadcast completed: {}", report.completed);
    println!("  propagation rounds: {}", report.propagation_rounds);
    println!("  charged precompute: {}", report.charged_precompute_rounds);
    println!("  total rounds:       {}", report.total_rounds);
    println!(
        "  channel: {} transmissions, {} deliveries, {} collisions",
        report.metrics.transmissions, report.metrics.deliveries, report.metrics.collisions
    );

    // The headline: rounds per hop of network diameter.
    let d = g.diameter() as f64;
    println!(
        "  rounds/D = {:.1}  (the paper: O(log n / log D) per hop, O(1) when n = poly(D))",
        report.propagation_rounds as f64 / d
    );
}
