//! Anatomy of one Intra-Cluster Propagation (Algorithm 3): watch the
//! down/up/down passes move values between a cluster center and its members,
//! step by step, on a single cluster.
//!
//! ```text
//! cargo run --release --example icp_anatomy
//! ```

use radio_networks::cluster::Partition;
use radio_networks::prelude::*;
use radio_networks::schedule::{Downcast, SlotPolicy, TreeSchedule, Upcast};

fn main() {
    // One cluster spanning a small grid (β → 0 keeps everything together).
    let g = graph::generators::grid(9, 9);
    let mut rng = SmallRng::seed_from_u64(1);
    let part = Partition::compute(&g, 1e-9, &mut rng);
    let center = part.centers()[0];
    let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
    println!(
        "cluster: n = {}, center = {center}, tree depth = {}, window W = {}",
        g.n(),
        sched.max_depth(),
        sched.window()
    );

    // --- Step 1 (down): the center's value reaches everyone within ℓ.
    let radius = sched.max_depth();
    let mut down = Downcast::from_center_values(&sched, radius, &[Some(41)]);
    let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 7);
    let mut served_trace = Vec::new();
    let budget = down.pass_len();
    for _ in 0..budget {
        sim.step_with(&mut down);
        served_trace.push(g.nodes().filter(|&v| down.value_of(v).is_some()).count());
    }
    println!(
        "down pass: {} rounds, served {} nodes (one tree layer per {}-round window)",
        budget,
        served_trace.last().unwrap(),
        sched.window()
    );

    // --- Step 2 (up): two nodes know a *higher* message (learnt in an
    // earlier clustering, says the algorithm); the max convergecasts back.
    let after_down = down.into_values();
    let mut participating = vec![None; g.n()];
    let deep = g.nodes().max_by_key(|&v| sched.depth(v)).unwrap();
    participating[deep as usize] = Some(77);
    participating[40] = Some(55);
    println!(
        "up pass: node {deep} (depth {}) holds 77, node 40 (depth {}) holds 55",
        sched.depth(deep),
        sched.depth(40)
    );
    let mut up = Upcast::new(&sched, radius, participating);
    let budget = up.pass_len();
    sim.run(&mut up, budget);
    println!("          center now knows {:?} (the maximum wins)", up.value_of(center));

    // --- Step 3 (down again): the upgraded value floods back out.
    let center_value = up.value_of(center).max(after_down[center as usize]);
    let mut down2 = Downcast::from_center_values(&sched, radius, &[center_value]);
    let budget = down2.pass_len();
    sim.run(&mut down2, budget);
    let knowing_77 = g.nodes().filter(|&v| down2.value_of(v) == Some(77)).count();
    println!("down pass 2: {} rounds, {} of {} nodes now know 77", budget, knowing_77, g.n());
    println!(
        "\ntotal: 3 passes × (depth+1)·W = {} rounds — Lemma 2.3's O(ℓ + polylog) at work;\n\
         Compete chains thousands of these slots over ever-changing clusterings.",
        3 * (sched.max_depth() as u64 + 1) * sched.window() as u64
    );
}
