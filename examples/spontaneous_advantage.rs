//! Why spontaneous transmissions matter: (a) uninformed nodes build the
//! clustering infrastructure before any message exists — forbidden in the
//! classical lower-bound regime; (b) in the n = poly(D) regime that
//! infrastructure buys asymptotically optimal O(D) broadcasting.
//!
//! ```text
//! cargo run --release --example spontaneous_advantage
//! ```

use radio_networks::cluster::{DistributedPartition, DistributedPartitionConfig};
use radio_networks::prelude::*;

fn main() {
    // (a) The distributed Partition(β) protocol: every transmission happens
    // before any broadcast message exists — all of them spontaneous.
    let g = graph::generators::grid(24, 24);
    let net = NetParams::of_graph(&g);
    let mut proto = DistributedPartition::new(net, 0.25, DistributedPartitionConfig::default(), 11);
    let budget = proto.total_rounds();
    let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 11);
    let stats = sim.run(&mut proto, budget);
    let (partition, repairs) = proto.into_partition();
    println!(
        "distributed Partition(1/4) on grid-24x24: {} clusters in {} rounds \
         ({} spontaneous transmissions, {} repairs)",
        partition.num_clusters(),
        stats.rounds,
        stats.metrics.transmissions,
        repairs
    );
    println!(
        "  -> a no-spontaneous-transmissions algorithm cannot run this phase at all;\n\
         it is the infrastructure behind beating the Ω(D·log(n/D) + log²n) lower bound.\n"
    );

    // (b) The optimality regime: on paths (n = D+1), BGI pays Θ(D·log n)
    // while the spontaneous-transmission algorithm pays Θ(D).
    println!("{:>10} {:>12} {:>8} {:>12} {:>8}", "n=D+1", "BGI", "BGI/D", "CD'17", "CD/D");
    for n in [512usize, 1024, 2048] {
        let g = graph::generators::path(n);
        let net = NetParams::new(n, (n - 1) as u32);
        let bgi = baselines::bgi_broadcast(&g, net, 0, 3);
        let cd = core::compete_with_net(&g, net, &[(0, 1)], &core::CompeteParams::default(), 3)
            .expect("valid");
        let d = (n - 1) as f64;
        println!(
            "{:>10} {:>12} {:>8.1} {:>12} {:>8.1}",
            n,
            bgi.rounds,
            bgi.rounds as f64 / d,
            cd.propagation_rounds,
            cd.propagation_rounds as f64 / d
        );
    }
    println!("\nBGI/D grows with log n; CD/D stays flat — the paper's O(D) optimality claim.");
}
