//! Semantic properties of Compete: value conservation, monotonicity, and
//! multi-source correctness.

use radio_networks::prelude::*;

#[test]
fn compete_spreads_exactly_the_maximum() {
    let g = graph::generators::grid(9, 9);
    let params = core::CompeteParams::default();
    let sources = vec![(0u32, 5u64), (80, 300), (40, 200), (8, 299)];
    let report = core::compete(&g, &sources, &params, 5).expect("valid");
    assert!(report.completed);
    assert_eq!(report.target, 300);
    assert_eq!(report.nodes_knowing, g.n());
}

#[test]
fn known_values_are_always_real_source_values() {
    // Value conservation: no node may ever hold a value that was not some
    // source's message (no corruption through aggregation or scratch reuse).
    let g = graph::generators::random_geometric(150, 0.12, &mut SmallRng::seed_from_u64(8));
    let net = NetParams::new(g.n(), g.diameter_double_sweep());
    let params = core::CompeteParams::default();
    let sources = vec![(3u32, 17u64), (77, 23), (120, 40), (60, 31)];
    let legal: Vec<u64> = sources.iter().map(|&(_, v)| v).collect();
    let pre = core::Precomputed::build(&g, net, &params, 2);
    let mut proto = core::CompeteProtocol::new(&pre, params, &sources, 2);
    let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 2);
    for _ in 0..40 {
        sim.run(&mut proto, 250);
        for v in g.nodes() {
            if let Some(x) = proto.value_of(v) {
                assert!(legal.contains(&x), "node {v} holds fabricated value {x}");
            }
        }
        if proto.all_know_target() {
            break;
        }
    }
    assert!(proto.all_know_target());
}

#[test]
fn duplicate_and_equal_sources_are_fine() {
    let g = graph::generators::path(50);
    let params = core::CompeteParams::default();
    // Same node twice with different values; two nodes sharing a value.
    let sources = vec![(0u32, 9u64), (0, 12), (25, 12), (49, 3)];
    let report = core::compete(&g, &sources, &params, 6).expect("valid");
    assert!(report.completed);
    assert_eq!(report.target, 12);
}

#[test]
fn all_nodes_as_sources_completes_quickly() {
    let g = graph::generators::grid(8, 8);
    let params = core::CompeteParams::default();
    let sources: Vec<(NodeId, u64)> = g.nodes().map(|v| (v, v as u64)).collect();
    let report = core::compete(&g, &sources, &params, 4).expect("valid");
    assert!(report.completed);
    assert_eq!(report.target, 63);
}

#[test]
fn charged_vs_ignored_precompute_same_propagation() {
    // The accounting mode must not change the execution, only the report.
    let g = graph::generators::grid(8, 8);
    let charged = core::CompeteParams::default();
    let ignored = core::CompeteParams { precompute: core::PrecomputeMode::Ignored, ..charged };
    let a = core::broadcast(&g, 0, &charged, 31).unwrap();
    let b = core::broadcast(&g, 0, &ignored, 31).unwrap();
    assert_eq!(a.propagation_rounds, b.propagation_rounds);
    assert_eq!(a.metrics, b.metrics);
    assert!(a.charged_precompute_rounds > 0);
    assert_eq!(b.charged_precompute_rounds, 0);
}

#[test]
fn global_sequence_scope_also_completes() {
    let g = graph::generators::grid(10, 10);
    let params = core::CompeteParams {
        sequence_scope: core::SequenceScope::Global,
        ..core::CompeteParams::default()
    };
    let report = core::broadcast(&g, 0, &params, 8).unwrap();
    assert!(report.completed);
}

#[test]
fn reports_serialize_to_json_like_serde_output() {
    // CompeteReport derives Serialize: check it is actually usable by
    // serializing to the serde-internal debug form via Debug + field access.
    let g = graph::generators::path(20);
    let report = core::broadcast(&g, 0, &core::CompeteParams::default(), 2).unwrap();
    assert_eq!(report.total_rounds, report.propagation_rounds + report.charged_precompute_rounds);
    let shown = format!("{report:?}");
    assert!(shown.contains("propagation_rounds"));
}
