//! Workspace smoke test: the README quickstart path, end to end.
//!
//! Builds a small random-geometric deployment, runs the paper's broadcast
//! through the umbrella crate's re-exports, and checks that the run
//! completes and is a pure function of the seed. This is the fastest
//! "did the whole stack wire together" signal the workspace has.

use radio_networks::prelude::*;

#[test]
fn quickstart_broadcast_completes_and_is_deterministic() {
    // Same deployment as the crate-root doc example, scaled down a notch
    // so the smoke test stays fast even in debug builds.
    let mut rng = SmallRng::seed_from_u64(1);
    let g = graph::generators::random_geometric(200, 0.1, &mut rng);
    assert!(g.n() == 200, "generator must honor the requested node count");

    let params = core::CompeteParams::default();
    let report = core::broadcast(&g, 0, &params, 42).expect("broadcast on a connected RGG runs");
    assert!(report.completed, "broadcast must inform every node");
    assert_eq!(report.nodes_knowing, g.n(), "every node must learn the target");
    assert!(report.propagation_rounds > 0, "propagation takes at least one round");
    assert!(report.metrics.transmissions > 0, "someone must have transmitted");

    // Determinism per seed: byte-identical report on replay...
    let replay = core::broadcast(&g, 0, &params, 42).expect("replay runs");
    assert_eq!(report, replay, "same (graph, params, seed) must reproduce the report exactly");

    // ...and a different seed takes a visibly different execution.
    let other = core::broadcast(&g, 0, &params, 43).expect("other seed runs");
    assert!(other.completed);
    assert_ne!(
        (report.propagation_rounds, report.metrics.transmissions),
        (other.propagation_rounds, other.metrics.transmissions),
        "different seeds should explore different executions (overwhelmingly likely)"
    );
}
