//! End-to-end integration: broadcast and leader election across topology
//! families, exercising the whole stack (graph → sim → cluster → schedule →
//! core).

use radio_networks::prelude::*;

fn topologies(seed: u64) -> Vec<(String, Graph)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    vec![
        ("path-120".into(), graph::generators::path(120)),
        ("cycle-90".into(), graph::generators::cycle(90)),
        ("grid-12x12".into(), graph::generators::grid(12, 12)),
        ("torus-8x8".into(), graph::generators::torus(8, 8)),
        ("rgg-200".into(), graph::generators::random_geometric(200, 0.12, &mut rng)),
        ("gnp-150".into(), graph::generators::gnp_connected(150, 0.03, &mut rng)),
        ("tree-100".into(), graph::generators::random_tree(100, &mut rng)),
        ("caterpillar".into(), graph::generators::caterpillar(30, 3)),
        ("barbell".into(), graph::generators::barbell(15, 20)),
        ("chain".into(), graph::generators::cluster_chain(5, 24, 0.2, &mut rng)),
    ]
}

#[test]
fn broadcast_completes_on_every_topology_family() {
    let params = core::CompeteParams::default();
    for (name, g) in topologies(1) {
        let report = core::broadcast(&g, 0, &params, 7).expect("connected");
        assert!(
            report.completed,
            "{name}: broadcast incomplete after {} rounds",
            report.propagation_rounds
        );
        assert_eq!(report.nodes_knowing, g.n(), "{name}");
    }
}

#[test]
fn leader_election_agrees_on_every_topology_family() {
    let params = core::CompeteParams::default();
    for (name, g) in topologies(2) {
        let report = core::leader_election(&g, &params, 11).expect("connected");
        assert!(report.compete.completed, "{name}: LE incomplete");
        assert!(report.leader.is_some(), "{name}: no leader");
        assert!(report.unique_winner, "{name}: ID collision (improbable)");
        assert!(report.num_candidates >= 1, "{name}");
    }
}

#[test]
fn broadcast_from_every_corner_of_a_grid() {
    let g = graph::generators::grid(10, 10);
    let params = core::CompeteParams::default();
    for source in [0u32, 9, 90, 99, 55] {
        let report = core::broadcast(&g, source, &params, 13).expect("connected");
        assert!(report.completed, "source {source}");
    }
}

#[test]
fn disconnected_graph_is_rejected() {
    let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    let params = core::CompeteParams::default();
    let err = core::broadcast(&g, 0, &params, 1).unwrap_err();
    assert_eq!(err, core::CompeteError::Disconnected);
    let err = core::leader_election(&g, &params, 1).unwrap_err();
    assert_eq!(err, core::CompeteError::Disconnected);
}

#[test]
fn invalid_source_is_rejected() {
    let g = graph::generators::path(4);
    let params = core::CompeteParams::default();
    let err = core::broadcast(&g, 9, &params, 1).unwrap_err();
    assert_eq!(err, core::CompeteError::SourceOutOfRange { node: 9 });
    let err = core::compete(&g, &[], &params, 1).unwrap_err();
    assert_eq!(err, core::CompeteError::NoSources);
}

#[test]
fn single_node_network_works() {
    let g = Graph::from_edges(1, &[]).unwrap();
    let report = core::broadcast(&g, 0, &core::CompeteParams::default(), 1).expect("trivial");
    assert!(report.completed);
    assert_eq!(report.propagation_rounds, 0);
}

#[test]
fn haeupler_wajc_mode_also_completes() {
    let g = graph::generators::grid(10, 10);
    let report = core::broadcast(&g, 0, &core::CompeteParams::haeupler_wajc(), 3).expect("runs");
    assert!(report.completed);
}
