//! Property tests of the full pipeline on randomly generated connected
//! graphs: completion, value conservation, and leader agreement must hold on
//! *arbitrary* topologies, not just the curated families.

use proptest::prelude::*;
use radio_networks::prelude::*;

/// Strategy: a connected graph on 2..=40 nodes (spanning path + chords).
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 1..n as u32).prop_map(move |(u, k)| {
            let v = (u + k) % n as u32;
            if u < v {
                (u, v)
            } else {
                (v, u)
            }
        });
        proptest::collection::vec(edge, 0..60).prop_map(move |mut edges| {
            for v in 1..n as u32 {
                edges.push((v - 1, v));
            }
            Graph::from_edges(n, &edges).expect("valid")
        })
    })
}

proptest! {
    // End-to-end runs are comparatively expensive; keep the case count
    // moderate — these are breadth tests, the curated suites go deep.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn broadcast_completes_on_arbitrary_connected_graphs(
        g in arb_connected_graph(),
        seed in any::<u64>(),
    ) {
        let source = (seed % g.n() as u64) as NodeId;
        let report = core::broadcast(&g, source, &core::CompeteParams::default(), seed)
            .expect("connected by construction");
        prop_assert!(report.completed, "n={} source={source} seed={seed}", g.n());
        prop_assert_eq!(report.nodes_knowing, g.n());
    }

    #[test]
    fn compete_agrees_on_the_maximum(
        g in arb_connected_graph(),
        seed in any::<u64>(),
        values in proptest::collection::vec(1u64..1_000_000, 1..6),
    ) {
        let sources: Vec<(NodeId, u64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (((seed as usize + i * 7) % g.n()) as NodeId, v))
            .collect();
        let max = *values.iter().max().unwrap();
        let report = core::compete(&g, &sources, &core::CompeteParams::default(), seed)
            .expect("connected");
        prop_assert!(report.completed);
        prop_assert_eq!(report.target, max);
    }

    #[test]
    fn leader_election_elects_exactly_one(
        g in arb_connected_graph(),
        seed in any::<u64>(),
    ) {
        let report = core::leader_election(&g, &core::CompeteParams::default(), seed)
            .expect("connected");
        prop_assert!(report.compete.completed);
        prop_assert!(report.leader.is_some());
        // ID collisions have probability ~ n²/2^32 — negligible at n ≤ 40;
        // surface them loudly if the RNG ever misbehaves.
        prop_assert!(report.unique_winner);
    }

    #[test]
    fn baselines_complete_on_arbitrary_connected_graphs(
        g in arb_connected_graph(),
        seed in any::<u64>(),
    ) {
        let net = NetParams::new(g.n(), g.diameter());
        let bgi = baselines::bgi_broadcast(&g, net, 0, seed);
        prop_assert!(bgi.completed, "BGI failed on n={}", g.n());
        let cr = baselines::truncated_broadcast(&g, net, 0, seed);
        prop_assert!(cr.completed, "truncated decay failed on n={}", g.n());
    }
}
