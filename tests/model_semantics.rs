//! Cross-crate checks of the radio model semantics: the collision rule is
//! exactly the paper's, and protocols experience it identically whichever
//! crate they come from.

use radio_networks::prelude::*;
use radio_networks::sim::testing::NaiveFlood;

#[test]
fn naive_flooding_hits_the_deterministic_collision_trap() {
    // The canonical example: on an even cycle, symmetric flooding produces a
    // permanent collision at the antipode. Randomized decay resolves it.
    let g = graph::generators::cycle(4);
    let mut flood = NaiveFlood::new(4, 0);
    let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
    sim.run(&mut flood, 100);
    assert_eq!(flood.informed_count(), 3, "antipode starves forever");

    let net = NetParams::of_graph(&g);
    let mut bgi = decay::DecayBroadcast::single_source(net, 0, 1, 1);
    let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
    sim.run_until(&mut bgi, 10_000, |_, p| p.all_informed());
    assert!(bgi.all_informed(), "decay breaks the symmetry");
}

#[test]
fn collision_detection_model_changes_observations_not_deliveries() {
    // The same protocol run under CD and no-CD must deliver identically —
    // CD only adds collision notifications.
    let g = graph::generators::grid(6, 6);
    let net = NetParams::of_graph(&g);
    let run = |model: CollisionModel| {
        let mut p = decay::DecayBroadcast::single_source(net, 0, 1, 9);
        let mut sim = Simulator::new(&g, model, 9);
        let stats = sim.run_until(&mut p, 100_000, |_, p| p.all_informed());
        (stats.rounds, stats.metrics.deliveries, stats.metrics.collisions)
    };
    let nocd = run(CollisionModel::NoCollisionDetection);
    let cd = run(CollisionModel::CollisionDetection);
    assert_eq!(nocd, cd, "DecayBroadcast ignores collision events, so runs must be identical");
}

#[test]
fn jamming_degrades_gracefully_never_panics() {
    // Failure injection: jammed nodes never relay (their protocol actions
    // are replaced by noise), so the message must route around them. On a
    // grid with two interior jammers every other node is still reached.
    let g = graph::generators::grid(8, 8);
    let net = NetParams::of_graph(&g);
    let jammers = vec![9u32, 18];
    let inner = decay::DecayBroadcast::single_source(net, 0, 1, 5);
    let mut jammed = sim::Jammer::new(inner, g.n(), jammers.clone(), 0.5, 99);
    let mut simulator = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
    simulator.run_until(&mut jammed, 100_000, |_, p| {
        g.nodes().all(|v| p.inner().value_of(v).is_some() || jammers.contains(&v))
    });
    for v in g.nodes() {
        if !jammers.contains(&v) {
            assert_eq!(jammed.inner().value_of(v), Some(1), "node {v} not reached");
        }
    }

    // An always-on jammer at a cut vertex stops everything behind it.
    let path = graph::generators::path(40);
    let pnet = NetParams::of_graph(&path);
    let inner = decay::DecayBroadcast::single_source(pnet, 0, 1, 5);
    let mut blocked = sim::Jammer::new(inner, path.n(), vec![1], 1.0, 99);
    let mut simulator = Simulator::new(&path, CollisionModel::NoCollisionDetection, 5);
    simulator.run(&mut blocked, 20_000);
    let informed = path.nodes().filter(|&v| blocked.inner().value_of(v).is_some()).count();
    assert!(informed <= 2, "nothing can pass a permanently jammed cut vertex");
}

#[test]
fn compete_survives_jamming_without_false_completion() {
    let g = graph::generators::grid(8, 8);
    let net = NetParams::of_graph(&g);
    let params = core::CompeteParams::default();
    let pre = core::Precomputed::build(&g, net, &params, 3);
    let inner = core::CompeteProtocol::new(&pre, params, &[(0, 7)], 3);
    let jam_nodes: Vec<NodeId> = (1..8).collect();
    let mut jammed = sim::Jammer::new(inner, g.n(), jam_nodes, 0.9, 17);
    let mut simulator = Simulator::new(&g, CollisionModel::NoCollisionDetection, 3);
    simulator.run_until(&mut jammed, 200_000, |_, p| p.inner().all_know_target());
    // Whatever happened, knowledge must only ever be the true source value.
    for v in g.nodes() {
        if let Some(x) = jammed.inner().value_of(v) {
            assert_eq!(x, 7, "node {v} learned a fabricated value");
        }
    }
}

#[test]
fn interleaved_protocols_do_not_interfere_semantically() {
    // Run two independent decay broadcasts time-sliced on one channel: both
    // must complete, and each node's value must come from its own protocol.
    let g = graph::generators::path(30);
    let net = NetParams::of_graph(&g);
    let a = decay::DecayBroadcast::single_source(net, 0, 111, 1);
    let b = decay::DecayBroadcast::single_source(net, 29, 222, 2);
    let mut both = sim::Interleave::new(a, b);
    let mut simulator = Simulator::new(&g, CollisionModel::NoCollisionDetection, 4);
    simulator.run_until(&mut both, 400_000, |_, p| {
        p.first().all_informed() && p.second().all_informed()
    });
    assert!(both.first().all_informed());
    assert!(both.second().all_informed());
    for v in g.nodes() {
        assert_eq!(both.first().value_of(v), Some(111));
        assert_eq!(both.second().value_of(v), Some(222));
    }
}
