//! Determinism: every run is a pure function of (graph, params, seed).

use radio_networks::prelude::*;

#[test]
fn broadcast_reports_are_seed_deterministic() {
    let g = graph::generators::grid(9, 9);
    let params = core::CompeteParams::default();
    let a = core::broadcast(&g, 0, &params, 77).unwrap();
    let b = core::broadcast(&g, 0, &params, 77).unwrap();
    assert_eq!(a, b, "same seed must give identical reports");
    let c = core::broadcast(&g, 0, &params, 78).unwrap();
    assert_ne!(
        (a.propagation_rounds, a.metrics.transmissions),
        (c.propagation_rounds, c.metrics.transmissions),
        "different seeds should differ (overwhelmingly likely)"
    );
}

#[test]
fn leader_election_is_seed_deterministic() {
    let g = graph::generators::random_geometric(150, 0.12, &mut SmallRng::seed_from_u64(5));
    let params = core::CompeteParams::default();
    let a = core::leader_election(&g, &params, 9).unwrap();
    let b = core::leader_election(&g, &params, 9).unwrap();
    assert_eq!(a.leader, b.leader);
    assert_eq!(a.compete, b.compete);
}

#[test]
fn generators_are_seed_deterministic() {
    let a = graph::generators::random_geometric(200, 0.1, &mut SmallRng::seed_from_u64(3));
    let b = graph::generators::random_geometric(200, 0.1, &mut SmallRng::seed_from_u64(3));
    assert_eq!(a, b);
    let t1 = graph::generators::random_tree(64, &mut SmallRng::seed_from_u64(4));
    let t2 = graph::generators::random_tree(64, &mut SmallRng::seed_from_u64(4));
    assert_eq!(t1, t2);
}

#[test]
fn baseline_runs_are_seed_deterministic() {
    let g = graph::generators::grid(10, 10);
    let net = NetParams::of_graph(&g);
    let a = baselines::bgi_broadcast(&g, net, 0, 21);
    let b = baselines::bgi_broadcast(&g, net, 0, 21);
    assert_eq!(a, b);
    let l1 =
        baselines::binary_search_leader_election(&g, net, baselines::BroadcastKind::Bgi, 1.0, 5);
    let l2 =
        baselines::binary_search_leader_election(&g, net, baselines::BroadcastKind::Bgi, 1.0, 5);
    assert_eq!(l1, l2);
}

#[test]
fn simulator_transcripts_are_deterministic() {
    // Two identically-seeded decay broadcasts must produce identical
    // round-by-round metrics, not just identical outcomes.
    let g = graph::generators::grid(8, 8);
    let net = NetParams::of_graph(&g);
    let run = || {
        let mut p = decay::DecayBroadcast::single_source(net, 0, 1, 33);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 33);
        let mut trail = Vec::new();
        for _ in 0..200 {
            sim.step_with(&mut p);
            let m = sim.metrics();
            trail.push((m.transmissions, m.deliveries, m.collisions));
        }
        trail
    };
    assert_eq!(run(), run());
}
